//! The paper's measured activity costs (Tables 6.1, 6.4–6.23).
//!
//! Every number below is transcribed from the thesis: per-activity
//! processing time, shared-memory access time (split into kernel-buffer and
//! task-control-block partitions for Architecture IV), and the paper's
//! "contention" completion time computed by its low-level GTPN contention
//! model (Table 6.2/6.3 and §6.6.2). Times are microseconds on the 8 MHz
//! Motorola 68000 / Versabus calibration of §6.4 (instruction ≈ 3 µs,
//! memory cycle ≈ 1 µs, smart bus four-edge handshake = 1 µs).

use std::fmt;

/// The four compared node architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Architecture I — uniprocessor.
    Uniprocessor,
    /// Architecture II — host + message coprocessor, conventional memory.
    MessageCoprocessor,
    /// Architecture III — host + MP + smart bus/smart memory.
    SmartBus,
    /// Architecture IV — smart bus/memory partitioned into TCB and KB buses.
    PartitionedSmartBus,
}

impl Architecture {
    /// All four, in the paper's order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Uniprocessor,
        Architecture::MessageCoprocessor,
        Architecture::SmartBus,
        Architecture::PartitionedSmartBus,
    ];

    /// The paper's Roman-numeral label.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Uniprocessor => "I",
            Architecture::MessageCoprocessor => "II",
            Architecture::SmartBus => "III",
            Architecture::PartitionedSmartBus => "IV",
        }
    }

    /// Whether the node has a message coprocessor.
    pub fn has_mp(self) -> bool {
        !matches!(self, Architecture::Uniprocessor)
    }

    /// Whether the shared memory/bus is partitioned (Architecture IV).
    pub fn partitioned(self) -> bool {
        matches!(self, Architecture::PartitionedSmartBus)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Architecture {}", self.label())
    }
}

/// Local vs non-local conversations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Client and server on the same node.
    Local,
    /// Client and server on different nodes.
    NonLocal,
}

/// Which processor executes an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Processor {
    /// The host CPU.
    Host,
    /// The message coprocessor.
    Mp,
    /// A network interface DMA engine.
    Dma,
}

/// Which party initiates an activity (Tables' "Initiator" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Initiator {
    /// The client task.
    Client,
    /// The server task.
    Server,
    /// Network-interrupt processing.
    NetworkInterrupt,
    /// Kernel housekeeping with no single initiator.
    Kernel,
}

/// The semantic steps of a conversation, used by the simulator to look up
/// costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// Client executes the `send` system call (entry; on Architecture I this
    /// includes all send processing).
    SyscallSend,
    /// MP processes the send (Architectures II–IV only).
    ProcessSend,
    /// DMA of the outgoing packet.
    DmaOut,
    /// Server executes the `receive` system call.
    SyscallReceive,
    /// MP processes the receive (II–IV only).
    ProcessReceive,
    /// DMA of the incoming packet.
    DmaIn,
    /// Matching the client with the server (on packet arrival for
    /// non-local; after both sides posted for local).
    Match,
    /// Restarting the server on the host after the rendezvous forms.
    RestartServer,
    /// Server executes the `reply` system call.
    SyscallReply,
    /// MP processes the reply (II–IV only).
    ProcessReply,
    /// Restarting the server after the reply completes (II–IV only).
    RestartServerAfterReply,
    /// Cleanup on the client node when the reply packet arrives (II–IV
    /// non-local; folded into `Match`-style interrupt processing on I).
    CleanupClient,
    /// Restarting the client once the reply is delivered.
    RestartClient,
}

/// One measured activity: Tables 6.4–6.23 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// The paper's action number ("1", "4a", …).
    pub action: &'static str,
    /// Semantic step.
    pub kind: ActivityKind,
    /// Executing processor.
    pub processor: Processor,
    /// Initiator column.
    pub initiator: Initiator,
    /// Pure processing time, µs.
    pub processing_us: f64,
    /// Kernel-buffer partition access time, µs (Architecture IV split; for
    /// I–III the whole shared access is stored on one partition and the
    /// split is immaterial because there is a single bus).
    pub kb_us: f64,
    /// Task-control-block partition access time, µs.
    pub tcb_us: f64,
    /// The paper's contention completion time, µs (its low-level model's
    /// output; equals `best_us` for Architecture I local).
    pub contention_us: f64,
}

impl Activity {
    /// Total shared-memory access time.
    pub fn shared_us(&self) -> f64 {
        self.kb_us + self.tcb_us
    }

    /// Contention-free completion time ("Best" column).
    pub fn best_us(&self) -> f64 {
        self.processing_us + self.shared_us()
    }
}

#[allow(clippy::too_many_arguments)] // one argument per table column
const fn act(
    action: &'static str,
    kind: ActivityKind,
    processor: Processor,
    initiator: Initiator,
    processing_us: f64,
    kb_us: f64,
    tcb_us: f64,
    contention_us: f64,
) -> Activity {
    Activity {
        action,
        kind,
        processor,
        initiator,
        processing_us,
        kb_us,
        tcb_us,
        contention_us,
    }
}

use ActivityKind as K;
use Initiator as I;
use Processor as P;

/// Table 6.4 — Architecture I, local conversation.
pub const ARCH1_LOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        1040.0,
        0.0,
        150.0,
        1190.0,
    ),
    act(
        "2",
        K::SyscallReceive,
        P::Host,
        I::Server,
        650.0,
        0.0,
        120.0,
        770.0,
    ),
    act(
        "3",
        K::Match,
        P::Host,
        I::Kernel,
        1240.0,
        0.0,
        140.0,
        1380.0,
    ),
    act(
        "5",
        K::SyscallReply,
        P::Host,
        I::Server,
        1020.0,
        0.0,
        210.0,
        1230.0,
    ),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Kernel,
        140.0,
        0.0,
        60.0,
        200.0,
    ),
    act(
        "7",
        K::RestartClient,
        P::Host,
        I::Kernel,
        140.0,
        0.0,
        60.0,
        200.0,
    ),
];

/// Table 6.6 — Architecture I, non-local conversation.
pub const ARCH1_NONLOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        1140.0,
        0.0,
        150.0,
        1314.9,
    ),
    act("2", K::DmaOut, P::Dma, I::Client, 200.0, 30.0, 0.0, 235.2),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        650.0,
        0.0,
        120.0,
        790.7,
    ),
    act(
        "4",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        30.0,
        0.0,
        235.2,
    ),
    act(
        "4a",
        K::Match,
        P::Host,
        I::NetworkInterrupt,
        1790.0,
        0.0,
        210.0,
        2034.6,
    ),
    act(
        "4c",
        K::SyscallReply,
        P::Host,
        I::Server,
        1060.0,
        0.0,
        220.0,
        1318.5,
    ),
    act("5", K::DmaOut, P::Dma, I::Server, 200.0, 30.0, 0.0, 235.2),
    act(
        "6",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        30.0,
        0.0,
        235.2,
    ),
    act(
        "7",
        K::CleanupClient,
        P::Host,
        I::NetworkInterrupt,
        830.0,
        0.0,
        130.0,
        982.0,
    ),
];

/// Table 6.9 — Architecture II, local conversation.
pub const ARCH2_LOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        320.0,
        0.0,
        78.0,
        404.9,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        900.0,
        0.0,
        104.0,
        1030.2,
    ),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        320.0,
        0.0,
        78.0,
        404.9,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        510.0,
        0.0,
        74.0,
        603.0,
    ),
    act("5", K::Match, P::Mp, I::Kernel, 1160.0, 0.0, 84.0, 1264.4),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        115.4,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        320.0,
        0.0,
        78.0,
        404.9,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        1060.0,
        0.0,
        182.0,
        1289.8,
    ),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        115.4,
    ),
    act(
        "9",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        115.4,
    ),
];

/// Table 6.11 — Architecture II, non-local conversation.
pub const ARCH2_NONLOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        320.0,
        0.0,
        78.0,
        426.8,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        1000.0,
        0.0,
        104.0,
        1145.2,
    ),
    act("2a", K::DmaOut, P::Dma, I::Client, 200.0, 30.0, 0.0, 240.9),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        320.0,
        0.0,
        78.0,
        421.9,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        510.0,
        0.0,
        74.0,
        628.2,
    ),
    act(
        "5",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        30.0,
        0.0,
        247.8,
    ),
    act(
        "5m",
        K::Match,
        P::Mp,
        I::NetworkInterrupt,
        1650.0,
        0.0,
        104.0,
        1812.5,
    ),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        128.6,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        320.0,
        0.0,
        78.0,
        421.9,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        920.0,
        0.0,
        128.0,
        1124.0,
    ),
    act("7a", K::DmaOut, P::Dma, I::Server, 200.0, 30.0, 0.0, 247.8),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        128.6,
    ),
    act(
        "9",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        30.0,
        0.0,
        240.9,
    ),
    act(
        "9a",
        K::CleanupClient,
        P::Mp,
        I::NetworkInterrupt,
        750.0,
        0.0,
        74.0,
        853.2,
    ),
    act(
        "10",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        118.0,
    ),
];

/// Table 6.14 — Architecture III, local conversation.
pub const ARCH3_LOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        220.0,
        0.0,
        52.0,
        278.0,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        612.0,
        0.0,
        71.0,
        700.9,
    ),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        278.0,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        451.0,
        0.0,
        61.0,
        527.6,
    ),
    act("5", K::Match, P::Mp, I::Kernel, 922.0, 0.0, 61.0, 997.7),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        117.2,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        278.0,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        475.0,
        0.0,
        113.0,
        619.0,
    ),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        117.2,
    ),
    act(
        "9",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        117.2,
    ),
];

/// Table 6.16 — Architecture III, non-local conversation.
pub const ARCH3_NONLOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        220.0,
        0.0,
        52.0,
        284.5,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        712.0,
        0.0,
        71.0,
        805.0,
    ),
    act("2a", K::DmaOut, P::Dma, I::Client, 200.0, 15.0, 0.0, 219.4),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        281.8,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        451.0,
        0.0,
        61.0,
        540.0,
    ),
    act(
        "5",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        15.0,
        0.0,
        222.1,
    ),
    act(
        "5m",
        K::Match,
        P::Mp,
        I::NetworkInterrupt,
        1362.0,
        0.0,
        71.0,
        1461.0,
    ),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        121.5,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        281.8,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        573.0,
        0.0,
        82.0,
        690.0,
    ),
    act("7a", K::DmaOut, P::Dma, I::Server, 200.0, 15.0, 0.0, 222.1),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        121.5,
    ),
    act(
        "9",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        15.0,
        0.0,
        219.4,
    ),
    act(
        "9a",
        K::CleanupClient,
        P::Mp,
        I::NetworkInterrupt,
        462.0,
        0.0,
        41.0,
        514.0,
    ),
    act(
        "10",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        115.1,
    ),
];

/// Table 6.19 — Architecture IV, local conversation (KB/TCB split).
pub const ARCH4_LOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        220.0,
        0.0,
        52.0,
        273.7,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        612.0,
        50.0,
        21.0,
        687.9,
    ),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        273.7,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        451.0,
        40.0,
        21.0,
        516.9,
    ),
    act("5", K::Match, P::Mp, I::Kernel, 922.0, 60.0, 1.0, 983.2),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        112.0,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        273.7,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        475.0,
        80.0,
        33.0,
        595.9,
    ),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        112.0,
    ),
    act(
        "9",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        112.0,
    ),
];

/// Table 6.21 — Architecture IV, non-local conversation (KB/TCB split).
pub const ARCH4_NONLOCAL: &[Activity] = &[
    act(
        "1",
        K::SyscallSend,
        P::Host,
        I::Client,
        220.0,
        0.0,
        52.0,
        273.2,
    ),
    act(
        "2",
        K::ProcessSend,
        P::Mp,
        I::Client,
        712.0,
        50.0,
        21.0,
        789.8,
    ),
    act("2a", K::DmaOut, P::Dma, I::Client, 200.0, 15.0, 0.0, 216.3),
    act(
        "3",
        K::SyscallReceive,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        273.5,
    ),
    act(
        "4",
        K::ProcessReceive,
        P::Mp,
        I::Server,
        451.0,
        40.0,
        21.0,
        520.2,
    ),
    act(
        "5",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        15.0,
        0.0,
        216.3,
    ),
    act(
        "5m",
        K::Match,
        P::Mp,
        I::NetworkInterrupt,
        1362.0,
        40.0,
        31.0,
        1443.0,
    ),
    act(
        "6",
        K::RestartServer,
        P::Host,
        I::Server,
        60.0,
        0.0,
        50.0,
        111.8,
    ),
    act(
        "6b",
        K::SyscallReply,
        P::Host,
        I::Server,
        220.0,
        0.0,
        52.0,
        273.5,
    ),
    act(
        "7",
        K::ProcessReply,
        P::Mp,
        I::Server,
        573.0,
        50.0,
        32.0,
        666.6,
    ),
    act("7a", K::DmaOut, P::Dma, I::Server, 200.0, 15.0, 0.0, 216.3),
    act(
        "8",
        K::RestartServerAfterReply,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        111.8,
    ),
    act(
        "9",
        K::DmaIn,
        P::Dma,
        I::NetworkInterrupt,
        200.0,
        15.0,
        0.0,
        216.3,
    ),
    act(
        "9a",
        K::CleanupClient,
        P::Mp,
        I::NetworkInterrupt,
        462.0,
        40.0,
        1.0,
        506.4,
    ),
    act(
        "10",
        K::RestartClient,
        P::Host,
        I::Kernel,
        60.0,
        0.0,
        50.0,
        110.5,
    ),
];

/// The activity table for an (architecture, locality) pair.
pub fn activity_table(arch: Architecture, locality: Locality) -> &'static [Activity] {
    match (arch, locality) {
        (Architecture::Uniprocessor, Locality::Local) => ARCH1_LOCAL,
        (Architecture::Uniprocessor, Locality::NonLocal) => ARCH1_NONLOCAL,
        (Architecture::MessageCoprocessor, Locality::Local) => ARCH2_LOCAL,
        (Architecture::MessageCoprocessor, Locality::NonLocal) => ARCH2_NONLOCAL,
        (Architecture::SmartBus, Locality::Local) => ARCH3_LOCAL,
        (Architecture::SmartBus, Locality::NonLocal) => ARCH3_NONLOCAL,
        (Architecture::PartitionedSmartBus, Locality::Local) => ARCH4_LOCAL,
        (Architecture::PartitionedSmartBus, Locality::NonLocal) => ARCH4_NONLOCAL,
    }
}

/// Looks up the activity of a semantic step, if the architecture has it.
pub fn activity(
    arch: Architecture,
    locality: Locality,
    kind: ActivityKind,
) -> Option<&'static Activity> {
    activity_table(arch, locality)
        .iter()
        .find(|a| a.kind == kind)
}

/// Round-trip communication time `C` (µs) of one conversation — the
/// processing the host and MP perform per round trip (the workload
/// parameter behind Tables 6.24/6.25). DMA activities are excluded for
/// non-local conversations: they proceed on the network interfaces
/// concurrently with host/MP processing (the paper's §6.6.4 treats network
/// activity as outside the processing budget). Uses the "Best"
/// (no-contention) column when `contended` is false, else the paper's
/// contention column.
pub fn round_trip_us(arch: Architecture, locality: Locality, contended: bool) -> f64 {
    activity_table(arch, locality)
        .iter()
        .filter(|a| a.processor != Processor::Dma)
        .map(|a| {
            if contended {
                a.contention_us
            } else {
                a.best_us()
            }
        })
        .sum()
}

/// The *elapsed* serial chain of one non-pipelined round trip as a client
/// observes it: every activity on the critical path (the server's next
/// `receive` preparation overlaps the reply's flight and is excluded),
/// including DMA. Wire time is not included — add the network transit
/// separately.
pub fn critical_path_us(arch: Architecture, locality: Locality) -> f64 {
    activity_table(arch, locality)
        .iter()
        .filter(|a| {
            !matches!(
                a.kind,
                ActivityKind::SyscallReceive
                    | ActivityKind::ProcessReceive
                    | ActivityKind::RestartServerAfterReply
            )
        })
        .map(Activity::best_us)
        .sum()
}

/// Offered load `C / (C + S)` for server time `S` µs (Tables 6.24/6.25).
pub fn offered_load(arch: Architecture, locality: Locality, server_us: f64) -> f64 {
    let c = round_trip_us(arch, locality, false);
    c / (c + server_us)
}

/// Table 6.1 — comparison of queue/block primitive costs (µs):
/// `(operation, architecture II (processing, memory), architecture III
/// (processing, memory))`.
#[allow(clippy::type_complexity)] // mirrors the table's column structure
pub const TABLE_6_1: &[(&str, (f64, f64), (f64, f64))] = &[
    ("Enqueue", (60.0, 14.0), (9.0, 1.0)),
    ("Dequeue", (60.0, 14.0), (9.0, 1.0)),
    ("First", (60.0, 14.0), (9.0, 2.0)),
    ("Block Read (40 Bytes)", (180.0, 20.0), (9.0, 11.0)),
    ("Block Write (40 Bytes)", (180.0, 20.0), (9.0, 11.0)),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch1_local_round_trip_is_4970us() {
        // §6.9.1 cross-check via Table 6.24: offered load 0.897 at
        // S = 570 µs implies C ≈ 4.97 ms.
        let c = round_trip_us(Architecture::Uniprocessor, Locality::Local, false);
        assert!((c - 4970.0).abs() < 1e-9, "C = {c}");
        let load = offered_load(Architecture::Uniprocessor, Locality::Local, 570.0);
        assert!((load - 0.897).abs() < 0.001, "load = {load}");
    }

    #[test]
    fn offered_loads_match_table_6_24_shape() {
        // Architecture IV has the smallest C, III close, II higher, I
        // highest — the ordering stated under Table 6.24.
        let c1 = round_trip_us(Architecture::Uniprocessor, Locality::Local, false);
        let c2 = round_trip_us(Architecture::MessageCoprocessor, Locality::Local, false);
        let c3 = round_trip_us(Architecture::SmartBus, Locality::Local, false);
        let c4 = round_trip_us(Architecture::PartitionedSmartBus, Locality::Local, false);
        assert!(c4 <= c3 && c3 < c2, "c4={c4} c3={c3} c2={c2}");
        // Offered load at fixed S orders the same way as C.
        let s = 5_700.0;
        let l1 = offered_load(Architecture::Uniprocessor, Locality::Local, s);
        let l3 = offered_load(Architecture::SmartBus, Locality::Local, s);
        assert!(l3 < l1);
        // Spot value: Table 6.24 row S=5.7ms, architecture I: 0.466.
        assert!((l1 - 0.466).abs() < 0.005, "l1 = {l1}");
        let _ = (c1, c2);
    }

    #[test]
    fn table_6_25_nonlocal_spot_values() {
        // S = 5.7 ms non-local: the paper reports I = 0.536, III = 0.474.
        // Our C excludes the concurrently-running DMA activities (see
        // `round_trip_us`), which lands within ~0.015 of the published
        // offered loads.
        let l1 = offered_load(Architecture::Uniprocessor, Locality::NonLocal, 5_700.0);
        assert!((l1 - 0.536).abs() < 0.02, "l1 = {l1}");
        let l3 = offered_load(Architecture::SmartBus, Locality::NonLocal, 5_700.0);
        assert!((l3 - 0.474).abs() < 0.02, "l3 = {l3}");
    }

    #[test]
    fn arch_iv_shared_access_splits_match_arch_iii_totals() {
        // The thesis's Architecture IV tables split III's shared access into
        // KB + TCB; totals agree activity-by-activity (local tables).
        for (a3, a4) in ARCH3_LOCAL.iter().zip(ARCH4_LOCAL.iter()) {
            assert_eq!(a3.kind, a4.kind);
            assert!(
                (a3.shared_us() - a4.shared_us()).abs() < 1e-9,
                "{:?}: {} vs {}",
                a3.kind,
                a3.shared_us(),
                a4.shared_us()
            );
            assert_eq!(a3.processing_us, a4.processing_us);
        }
    }

    #[test]
    fn contention_never_faster_than_best() {
        for arch in Architecture::ALL {
            for loc in [Locality::Local, Locality::NonLocal] {
                for a in activity_table(arch, loc) {
                    assert!(
                        a.contention_us >= a.best_us() - 1e-9,
                        "{arch} {loc:?} {:?}: contention {} < best {}",
                        a.kind,
                        a.contention_us,
                        a.best_us()
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_by_kind() {
        let a = activity(
            Architecture::MessageCoprocessor,
            Locality::Local,
            ActivityKind::Match,
        )
        .unwrap();
        assert_eq!(a.processor, Processor::Mp);
        assert_eq!(a.best_us(), 1244.0);
        // Architecture I has no MP processing step.
        assert!(activity(
            Architecture::Uniprocessor,
            Locality::Local,
            ActivityKind::ProcessSend
        )
        .is_none());
    }

    #[test]
    fn table_6_1_smart_bus_speedup() {
        for &(op, (p2, m2), (p3, m3)) in TABLE_6_1 {
            let t2 = p2 + m2;
            let t3 = p3 + m3;
            assert!(t3 < t2 / 3.0, "{op}: smart bus {t3} vs software {t2}");
        }
    }

    #[test]
    fn architecture_labels() {
        assert_eq!(Architecture::Uniprocessor.label(), "I");
        assert_eq!(Architecture::PartitionedSmartBus.label(), "IV");
        assert!(!Architecture::Uniprocessor.has_mp());
        assert!(Architecture::SmartBus.has_mp());
        assert!(Architecture::PartitionedSmartBus.partitioned());
        assert_eq!(format!("{}", Architecture::SmartBus), "Architecture III");
    }
}
