//! Property-based tests of the smart memory controller: the atomic queue
//! primitives against a reference model, and block-transfer integrity under
//! arbitrary preemption interleavings.

use proptest::prelude::*;
use smartbus::{BlockDirection, BusSlave, SlaveError};
use smartmem::{microcode, queue, Memory, SmartMemory};
use std::collections::VecDeque;

const LIST: u16 = 0x10;

#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue(u8),
    First,
    Dequeue(u8),
}

fn op_strategy() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u8..32).prop_map(QueueOp::Enqueue),
        Just(QueueOp::First),
        (0u8..32).prop_map(QueueOp::Dequeue),
    ]
}

fn element_addr(i: u8) -> u16 {
    0x100 + u16::from(i) * 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of enqueue/first/dequeue on the memory-resident circular
    /// list behaves exactly like a VecDeque (elements enter once; a present
    /// element is not re-enqueued — control blocks live on one list at a
    /// time, as in the kernel).
    #[test]
    fn queue_ops_match_vecdeque(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut mem = Memory::new(4096);
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::Enqueue(i) => {
                    let e = element_addr(i);
                    if !model.contains(&e) {
                        queue::enqueue(&mut mem, LIST, e).unwrap();
                        model.push_back(e);
                    }
                }
                QueueOp::First => {
                    let got = queue::first(&mut mem, LIST).unwrap();
                    prop_assert_eq!(got, model.pop_front());
                }
                QueueOp::Dequeue(i) => {
                    let e = element_addr(i);
                    queue::dequeue(&mut mem, LIST, e).unwrap();
                    model.retain(|&x| x != e);
                }
            }
            let listing = queue::elements(&mut mem, LIST).unwrap();
            let want: Vec<u16> = model.iter().copied().collect();
            prop_assert_eq!(listing, want);
        }
    }

    /// A block written in arbitrary chunk sizes (modelling arbitrary
    /// preemption points) and read back in arbitrary chunk sizes survives
    /// intact.
    #[test]
    fn block_survives_any_preemption_pattern(
        data in proptest::collection::vec(any::<u16>(), 1..64),
        write_chunks in proptest::collection::vec(1usize..5, 1..64),
        read_chunks in proptest::collection::vec(1usize..5, 1..64),
    ) {
        let mut sm = SmartMemory::new(8192);
        let count = (data.len() * 2) as u16;
        let tag = sm.block_transfer(0x400, count, BlockDirection::Write, 1).unwrap();
        let mut cursor = 0;
        let mut chunks = write_chunks.iter().cycle();
        while cursor < data.len() {
            let k = (*chunks.next().unwrap()).min(data.len() - cursor);
            sm.stream_in(tag, &data[cursor..cursor + k]).unwrap();
            cursor += k;
        }

        let tag = sm.block_transfer(0x400, count, BlockDirection::Read, 1).unwrap();
        let mut got = Vec::new();
        let mut chunks = read_chunks.iter().cycle();
        loop {
            let (words, done) = sm.stream_out(tag, *chunks.next().unwrap()).unwrap();
            got.extend(words);
            if done {
                break;
            }
        }
        prop_assert_eq!(got, data);
        prop_assert!(sm.block_table().is_empty());
    }

    /// Concurrent interleaved blocks to disjoint regions do not interfere,
    /// whatever the interleaving order.
    #[test]
    fn interleaved_blocks_isolated(
        a in proptest::collection::vec(any::<u16>(), 4..20),
        b in proptest::collection::vec(any::<u16>(), 4..20),
        schedule in proptest::collection::vec(any::<bool>(), 8..64),
    ) {
        let mut sm = SmartMemory::new(8192);
        let ta = sm.block_transfer(0x400, (a.len() * 2) as u16, BlockDirection::Write, 1).unwrap();
        let tb = sm.block_transfer(0x1400, (b.len() * 2) as u16, BlockDirection::Write, 2).unwrap();
        let (mut ca, mut cb) = (0usize, 0usize);
        let mut pick = schedule.iter().cycle();
        while ca < a.len() || cb < b.len() {
            if *pick.next().unwrap() && ca < a.len() || cb >= b.len() {
                sm.stream_in(ta, &a[ca..ca + 1]).unwrap();
                ca += 1;
            } else {
                sm.stream_in(tb, &b[cb..cb + 1]).unwrap();
                cb += 1;
            }
        }
        // Verify both regions.
        for (i, &w) in a.iter().enumerate() {
            let lo = sm.memory().dump(0x400 + (i as u16) * 2, 2).unwrap();
            prop_assert_eq!(u16::from(lo[0]) | (u16::from(lo[1]) << 8), w);
        }
        for (i, &w) in b.iter().enumerate() {
            let lo = sm.memory().dump(0x1400 + (i as u16) * 2, 2).unwrap();
            prop_assert_eq!(u16::from(lo[0]) | (u16::from(lo[1]) << 8), w);
        }
    }

    /// The Appendix A microcoded controller and the high-level queue
    /// implementation are interchangeable: for any operation sequence they
    /// produce identical results AND identical memory images.
    #[test]
    fn microcode_differentially_equal(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut hw = Memory::new(4096);
        let mut sw = Memory::new(4096);
        let mut live: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                QueueOp::Enqueue(i) => {
                    let e = element_addr(i);
                    if !live.contains(&e) {
                        microcode::exec::enqueue(&mut hw, LIST, e).unwrap();
                        queue::enqueue(&mut sw, LIST, e).unwrap();
                        live.push(e);
                    }
                }
                QueueOp::First => {
                    let a = microcode::exec::first(&mut hw, LIST).unwrap();
                    let b = queue::first(&mut sw, LIST).unwrap();
                    prop_assert_eq!(a, b);
                    if let Some(e) = a {
                        live.retain(|&x| x != e);
                    }
                }
                QueueOp::Dequeue(i) => {
                    let e = element_addr(i);
                    microcode::exec::dequeue(&mut hw, LIST, e).unwrap();
                    queue::dequeue(&mut sw, LIST, e).unwrap();
                    live.retain(|&x| x != e);
                }
            }
            prop_assert_eq!(hw.dump(0, 4096).unwrap(), sw.dump(0, 4096).unwrap());
        }
    }

    /// Draining a list of any size via repeated dequeue always ends with the
    /// anchor back at the distinguished NULL value — no dangling tail.
    #[test]
    fn dequeue_drains_to_empty(mut ids in proptest::collection::btree_set(0u8..32, 1..16)) {
        let mut mem = Memory::new(4096);
        for &i in &ids {
            queue::enqueue(&mut mem, LIST, element_addr(i)).unwrap();
        }
        // Remove in an order different from insertion: alternate ends.
        let mut from_front = true;
        while let Some(i) = if from_front { ids.pop_first() } else { ids.pop_last() } {
            from_front = !from_front;
            queue::dequeue(&mut mem, LIST, element_addr(i)).unwrap();
        }
        prop_assert_eq!(mem.read_word(LIST).unwrap(), smartmem::NULL_PTR);
        prop_assert!(queue::elements(&mut mem, LIST).unwrap().is_empty());
    }

    /// A single-element list is a self-loop: the element's next pointer is
    /// itself, and the anchor names it as tail, whatever element it is.
    #[test]
    fn singleton_is_self_loop(i in 0u8..32) {
        let mut mem = Memory::new(4096);
        let e = element_addr(i);
        queue::enqueue(&mut mem, LIST, e).unwrap();
        prop_assert_eq!(mem.read_word(LIST).unwrap(), e);
        prop_assert_eq!(mem.read_word(e + queue::NEXT_OFFSET).unwrap(), e);
        // First returns the element and restores the empty anchor.
        prop_assert_eq!(queue::first(&mut mem, LIST).unwrap(), Some(e));
        prop_assert_eq!(mem.read_word(LIST).unwrap(), smartmem::NULL_PTR);
    }

    /// Enqueue after a full drain rebuilds a well-formed list: the empty
    /// anchor carries no stale state from the previous population.
    #[test]
    fn enqueue_after_drain_rebuilds(
        first_gen in proptest::collection::btree_set(0u8..16, 1..8),
        second_gen in proptest::collection::btree_set(16u8..32, 1..8),
    ) {
        let mut mem = Memory::new(4096);
        for &i in &first_gen {
            queue::enqueue(&mut mem, LIST, element_addr(i)).unwrap();
        }
        for _ in 0..first_gen.len() {
            prop_assert!(queue::first(&mut mem, LIST).unwrap().is_some());
        }
        prop_assert_eq!(queue::first(&mut mem, LIST).unwrap(), None);
        // Second generation: FIFO order and circularity hold afresh.
        let want: Vec<u16> = second_gen.iter().map(|&i| element_addr(i)).collect();
        for &e in &want {
            queue::enqueue(&mut mem, LIST, e).unwrap();
        }
        prop_assert_eq!(queue::elements(&mut mem, LIST).unwrap(), want.clone());
        let tail = *want.last().unwrap();
        prop_assert_eq!(mem.read_word(tail + queue::NEXT_OFFSET).unwrap(), want[0]);
    }

    /// §A.5 error handling: out-of-range block requests are rejected before
    /// any state changes; stale tags are rejected.
    #[test]
    fn error_paths_leave_no_state(addr in 60_000u16.., count in 6_000u16..) {
        let mut sm = SmartMemory::new(64 * 1024);
        let r = sm.block_transfer(addr, count, BlockDirection::Read, 0);
        if u32::from(addr) + u32::from(count) > 64 * 1024 {
            let rejected = matches!(r, Err(SlaveError::AddressOutOfRange { .. }));
            prop_assert!(rejected, "expected range rejection, got {:?}", r);
            prop_assert!(sm.block_table().is_empty());
        }
    }
}
