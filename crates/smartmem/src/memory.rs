//! The byte-addressable memory module behind the smart controller.

use smartbus::SlaveError;

/// A flat little-endian memory image with cycle accounting.
///
/// Every word access costs one memory cycle — the counter lets tests and
/// benchmarks compare the controller's internal work against the bus-side
/// handshake time (Table 6.1 separates "processing time" from "time spent
/// in memory cycles").
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    cycles: u64,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds 64 KiB: the smart bus carries 16-bit
    /// addresses (§5.2), and the paper sizes the shared system data at under
    /// 64 KB.
    pub fn new(size: usize) -> Memory {
        assert!(size <= 64 * 1024, "smart bus addresses are 16 bits");
        Memory {
            bytes: vec![0; size],
            cycles: 0,
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Total word cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the cycle counter.
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
    }

    fn check(&self, addr: u16, len: u32) -> Result<(), SlaveError> {
        let end = u32::from(addr) + len;
        if end > self.bytes.len() as u32 {
            return Err(SlaveError::AddressOutOfRange { addr: end });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn read_byte(&mut self, addr: u16) -> Result<u8, SlaveError> {
        self.check(addr, 1)?;
        self.cycles += 1;
        Ok(self.bytes[addr as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn write_byte(&mut self, addr: u16, value: u8) -> Result<(), SlaveError> {
        self.check(addr, 1)?;
        self.cycles += 1;
        self.bytes[addr as usize] = value;
        Ok(())
    }

    /// Reads a 16-bit word (little endian).
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn read_word(&mut self, addr: u16) -> Result<u16, SlaveError> {
        self.check(addr, 2)?;
        self.cycles += 1;
        let a = addr as usize;
        Ok(u16::from(self.bytes[a]) | (u16::from(self.bytes[a + 1]) << 8))
    }

    /// Writes a 16-bit word (little endian).
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn write_word(&mut self, addr: u16, value: u16) -> Result<(), SlaveError> {
        self.check(addr, 2)?;
        self.cycles += 1;
        let a = addr as usize;
        self.bytes[a] = value as u8;
        self.bytes[a + 1] = (value >> 8) as u8;
        Ok(())
    }

    /// Copies `data` into memory starting at `addr` without cycle
    /// accounting — used by tests and loaders to set up images.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn load(&mut self, addr: u16, data: &[u8]) -> Result<(), SlaveError> {
        self.check(addr, data.len() as u32)?;
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` without cycle accounting.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] past the end of the module.
    pub fn dump(&self, addr: u16, len: usize) -> Result<&[u8], SlaveError> {
        self.check(addr, len as u32)?;
        let a = addr as usize;
        Ok(&self.bytes[a..a + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip_little_endian() {
        let mut m = Memory::new(256);
        m.write_word(10, 0xABCD).unwrap();
        assert_eq!(m.read_word(10).unwrap(), 0xABCD);
        assert_eq!(m.read_byte(10).unwrap(), 0xCD);
        assert_eq!(m.read_byte(11).unwrap(), 0xAB);
    }

    #[test]
    fn cycle_accounting() {
        let mut m = Memory::new(64);
        m.write_word(0, 1).unwrap();
        m.read_word(0).unwrap();
        m.read_byte(5).unwrap();
        assert_eq!(m.cycles(), 3);
        m.reset_cycles();
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::new(16);
        assert!(m.read_word(15).is_err());
        assert!(m.write_byte(16, 0).is_err());
        assert!(m.read_byte(15).is_ok());
        assert!(m.load(14, &[1, 2, 3]).is_err());
        assert!(m.dump(0, 17).is_err());
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn oversized_module_rejected() {
        Memory::new(64 * 1024 + 1);
    }

    #[test]
    fn load_and_dump_skip_cycles() {
        let mut m = Memory::new(32);
        m.load(4, &[9, 8, 7]).unwrap();
        assert_eq!(m.dump(4, 3).unwrap(), &[9, 8, 7]);
        assert_eq!(m.cycles(), 0);
    }
}
