//! # smartmem — the smart shared memory controller (Chapter 5 / Appendix A)
//!
//! The smart bus of the paper assumes a shared memory with enough
//! "intelligence" to execute high-level transactions: multiplexed block
//! transfers tracked in an internal request table, and *atomic queue
//! manipulation* on singly-linked circular lists of control blocks. The
//! thesis demonstrates feasibility with a microprogrammed controller design
//! (under 3000 bits of microcode, two-chip packaging, Appendix A).
//!
//! This crate simulates that controller:
//!
//! * [`Memory`] — the byte-addressable memory module (task control blocks +
//!   kernel buffers live here; the paper sizes it under 64 KB, which is why
//!   the bus carries 16-bit addresses).
//! * [`BlockTable`] — the internal table of outstanding block transfers;
//!   one entry per tag, progress cursor per entry, so a lower-priority
//!   transfer preempted between word pairs resumes where it stopped.
//! * [`queue`] — the `Enqueue` / `First` / `Dequeue` primitives, coded
//!   exactly from the §5.1 pseudo-code over the memory image, with memory-
//!   cycle accounting mirroring the micro-routines of Appendix A.
//! * [`shared`] — the same three queue transactions behind a
//!   thread-shareable trait for the live runtime: a lock-serialized module
//!   running the §5.1 routines (Architecture II) and a lock-free module
//!   whose transactions are single atomic operations (Architectures
//!   III/IV).
//! * [`SmartMemory`] — the whole controller, implementing
//!   [`smartbus::BusSlave`] so it plugs into the bus engine, plus the §A.5
//!   error handling (bad tags, table overflow, corrupt lists, out-of-range
//!   addresses).
//!
//! ## Quick example
//!
//! ```
//! use smartmem::SmartMemory;
//! use smartbus::{BusEngine, BusSlave, RequestNumber, Transaction, Response};
//!
//! let mut bus = BusEngine::new(SmartMemory::new(64 * 1024), RequestNumber::new(7));
//! let host = bus.add_unit("host", RequestNumber::new(1))?;
//! // Build a one-element circular list anchored at 0x100 and pop it.
//! bus.submit(host, Transaction::Enqueue { list: 0x100, element: 0x200 })?;
//! bus.run_until_idle()?;
//! bus.submit(host, Transaction::First { list: 0x100 })?;
//! let done = bus.run_until_idle()?;
//! assert_eq!(done[0].response, Response::Element(Some(0x200)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocktable;
mod controller;
mod memory;

pub mod errors;
pub mod micro;
pub mod microcode;
pub mod queue;
pub mod shared;

pub use blocktable::{BlockEntry, BlockTable};
pub use controller::{ControllerStats, SmartMemory};
pub use memory::Memory;

/// The distinguished NULL pointer value for circular lists (§5.1): address
/// zero never holds a control block.
pub const NULL_PTR: u16 = 0;
