//! Thread-shareable queue transactions — the §5.1 primitives as seen from
//! *concurrent* processors.
//!
//! The simulated controller in [`crate::queue`] runs the enqueue / first /
//! dequeue micro-routines to completion on a single-threaded memory image;
//! atomicity is implicit. A *live* node (the `runtime` crate) has a real
//! host thread and a real MP thread racing on the task-control-block and
//! kernel-buffer lists, so the same three transactions must be supplied in
//! a form that is atomic under genuine concurrency. [`SharedQueue`] is that
//! interface, and the two implementations mirror the paper's architectural
//! split:
//!
//! * [`LockedModule`] — Architecture II: the lists live in *conventional*
//!   memory and the kernel software manipulates them inside a critical
//!   section. The implementation literally runs the [`crate::queue`]
//!   pseudo-code transliteration over a [`Memory`] image while holding a
//!   module-wide lock — one processor on the memory at a time, exactly the
//!   serialization a conventional bus imposes.
//! * [`LockFreeModule`] — Architectures III/IV: the smart memory executes a
//!   whole queue transaction atomically within one bus transaction, so
//!   concurrent processors never observe a half-updated list and never
//!   spin on a software lock. Each list is a linearizable non-blocking
//!   MPMC FIFO built from atomic sequence-stamped cells (every slot is an
//!   atomic word, no locks anywhere on the enqueue/first paths).
//!
//! Elements are control-block *indices* (`u16`, like the 16-bit addresses
//! the smart bus carries); a module hosts several independent lists
//! addressed by [`ListId`], mirroring the anchors of §5.1.

use crate::memory::Memory;
use crate::queue;
use crate::NULL_PTR;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A list anchor within a shared module (§5.1 keeps one anchor word per
/// list: the free-buffer list, the computation list, the communication
/// list, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListId(pub u16);

/// The three smart-memory queue transactions, callable concurrently from
/// any number of threads.
pub trait SharedQueue: Send + Sync + std::fmt::Debug {
    /// `Enqueue(element, list)` — appends `element` at the tail.
    fn enqueue(&self, list: ListId, element: u16);
    /// `First(list)` — dequeues and returns the head, or `None` when empty.
    fn first(&self, list: ListId) -> Option<u16>;
    /// `Dequeue(element, list)` — removes `element` wherever it sits; a
    /// no-operation when the element is not on the list.
    fn dequeue(&self, list: ListId, element: u16);
    /// Whether the list is (momentarily) empty. Advisory under concurrency.
    fn is_empty(&self, list: ListId) -> bool;
}

/// Statistics a module keeps about its transaction stream.
#[derive(Debug, Default)]
pub struct SharedStats {
    /// Enqueue transactions executed.
    pub enqueues: AtomicUsize,
    /// First transactions that returned an element.
    pub firsts: AtomicUsize,
}

/// Architecture II's conventional shared memory: every transaction runs the
/// genuine singly-linked-circular-list micro-routine over a byte-addressed
/// [`Memory`] image, serialized by one module-wide lock.
#[derive(Debug)]
pub struct LockedModule {
    mem: Mutex<Memory>,
    lists: u16,
    blocks: u16,
    stats: SharedStats,
}

impl LockedModule {
    /// A module with `lists` anchors and `blocks` control blocks.
    pub fn new(lists: u16, blocks: u16) -> LockedModule {
        // Word 0 is the distinguished NULL; anchors follow, then one
        // two-byte `next` word per control block.
        let bytes = 2 + 2 * (lists as usize) + 2 * (blocks as usize);
        LockedModule {
            mem: Mutex::new(Memory::new(bytes.next_power_of_two().max(64))),
            lists,
            blocks,
            stats: SharedStats::default(),
        }
    }

    fn anchor(&self, list: ListId) -> u16 {
        assert!(list.0 < self.lists, "list {} out of range", list.0);
        2 + 2 * list.0
    }

    fn block_addr(&self, element: u16) -> u16 {
        assert!(element < self.blocks, "element {element} out of range");
        2 + 2 * self.lists + 2 * element
    }

    fn element_of(&self, addr: u16) -> u16 {
        (addr - 2 - 2 * self.lists) / 2
    }

    /// Transaction counters.
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }
}

impl SharedQueue for LockedModule {
    fn enqueue(&self, list: ListId, element: u16) {
        let anchor = self.anchor(list);
        let addr = self.block_addr(element);
        let mut mem = self.mem.lock().expect("module lock");
        queue::enqueue(&mut mem, anchor, addr).expect("enqueue in range");
        self.stats.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    fn first(&self, list: ListId) -> Option<u16> {
        let anchor = self.anchor(list);
        let mut mem = self.mem.lock().expect("module lock");
        let head = queue::first(&mut mem, anchor).expect("first in range")?;
        self.stats.firsts.fetch_add(1, Ordering::Relaxed);
        Some(self.element_of(head))
    }

    fn dequeue(&self, list: ListId, element: u16) {
        let anchor = self.anchor(list);
        let addr = self.block_addr(element);
        let mut mem = self.mem.lock().expect("module lock");
        queue::dequeue(&mut mem, anchor, addr).expect("well-formed list");
    }

    fn is_empty(&self, list: ListId) -> bool {
        let anchor = self.anchor(list);
        let mut mem = self.mem.lock().expect("module lock");
        mem.read_word(anchor).expect("anchor in range") == NULL_PTR
    }
}

/// One slot of the non-blocking FIFO: a sequence stamp plus the element.
/// Keeping the element itself in an atomic word (it is only 16 bits) lets
/// the whole queue be built without `unsafe`.
#[derive(Debug)]
struct Cell {
    seq: AtomicUsize,
    val: AtomicU32,
}

/// A bounded linearizable MPMC FIFO of `u16` elements (sequence-stamped
/// ring, after D. Vyukov). Producers claim a slot by CAS on the enqueue
/// cursor, write the element, then publish by bumping the slot's sequence;
/// consumers mirror the dance on the dequeue cursor. No locks, no waiting
/// on the fast path.
#[derive(Debug)]
struct MpmcFifo {
    cells: Box<[Cell]>,
    mask: usize,
    enq: AtomicUsize,
    deq: AtomicUsize,
}

impl MpmcFifo {
    fn new(capacity: usize) -> MpmcFifo {
        let cap = capacity.max(2).next_power_of_two();
        let cells = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                val: AtomicU32::new(0),
            })
            .collect();
        MpmcFifo {
            cells,
            mask: cap - 1,
            enq: AtomicUsize::new(0),
            deq: AtomicUsize::new(0),
        }
    }

    fn push(&self, v: u16) -> bool {
        loop {
            let pos = self.enq.load(Ordering::Relaxed);
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(pos as isize) {
                0 if self
                    .enq
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok() =>
                {
                    cell.val.store(u32::from(v), Ordering::Relaxed);
                    cell.seq.store(pos + 1, Ordering::Release);
                    return true;
                }
                d if d < 0 => return false, // full
                _ => {}                     // another producer advanced; retry
            }
        }
    }

    fn pop(&self) -> Option<u16> {
        loop {
            let pos = self.deq.load(Ordering::Relaxed);
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub((pos + 1) as isize) {
                0 if self
                    .deq
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok() =>
                {
                    let v = cell.val.load(Ordering::Relaxed) as u16;
                    cell.seq.store(pos + self.mask + 1, Ordering::Release);
                    return Some(v);
                }
                d if d < 0 => return None, // empty
                _ => {}                    // another consumer advanced; retry
            }
        }
    }

    fn is_empty(&self) -> bool {
        let pos = self.deq.load(Ordering::Relaxed);
        let seq = self.cells[pos & self.mask].seq.load(Ordering::Acquire);
        (seq as isize).wrapping_sub((pos + 1) as isize) < 0
    }
}

/// Architectures III/IV's smart memory: each list is a non-blocking FIFO
/// whose operations are single atomic transactions from the processors'
/// point of view — the simulated analogue of the controller executing a
/// whole `Enqueue`/`First` inside one bus tenure.
///
/// `Dequeue` (arbitrary removal) is implemented with per-element tombstone
/// flags: the element is marked dead and discarded when it surfaces at the
/// head. This preserves the §5.1 contract — the element no longer comes
/// back from `First` — under the runtime's invariant that a control block
/// sits on at most one list at a time.
#[derive(Debug)]
pub struct LockFreeModule {
    lists: Vec<MpmcFifo>,
    dead: Vec<AtomicBool>,
    stats: SharedStats,
}

impl LockFreeModule {
    /// A module with `lists` anchors, each able to hold every one of the
    /// `blocks` control blocks at once.
    pub fn new(lists: u16, blocks: u16) -> LockFreeModule {
        LockFreeModule {
            lists: (0..lists).map(|_| MpmcFifo::new(blocks as usize)).collect(),
            dead: (0..blocks).map(|_| AtomicBool::new(false)).collect(),
            stats: SharedStats::default(),
        }
    }

    fn list(&self, list: ListId) -> &MpmcFifo {
        &self.lists[list.0 as usize]
    }

    /// Transaction counters.
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }
}

impl SharedQueue for LockFreeModule {
    fn enqueue(&self, list: ListId, element: u16) {
        assert!((element as usize) < self.dead.len(), "element out of range");
        // A freshly enqueued element is live again even if a stale
        // tombstone was left behind by a remove that raced an in-flight pop.
        self.dead[element as usize].store(false, Ordering::Relaxed);
        assert!(self.list(list).push(element), "shared list overflow");
        self.stats.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    fn first(&self, list: ListId) -> Option<u16> {
        let fifo = self.list(list);
        while let Some(e) = fifo.pop() {
            if self.dead[e as usize].swap(false, Ordering::Relaxed) {
                continue; // tombstoned by a Dequeue; drop it
            }
            self.stats.firsts.fetch_add(1, Ordering::Relaxed);
            return Some(e);
        }
        None
    }

    fn dequeue(&self, _list: ListId, element: u16) {
        if (element as usize) < self.dead.len() {
            self.dead[element as usize].store(true, Ordering::Relaxed);
        }
    }

    fn is_empty(&self, list: ListId) -> bool {
        self.list(list).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn modules() -> Vec<Arc<dyn SharedQueue>> {
        vec![
            Arc::new(LockedModule::new(2, 64)),
            Arc::new(LockFreeModule::new(2, 64)),
        ]
    }

    #[test]
    fn fifo_order_single_thread() {
        for m in modules() {
            let l = ListId(0);
            for e in [3u16, 1, 4, 1 + 10, 5] {
                m.enqueue(l, e);
            }
            let got: Vec<u16> = std::iter::from_fn(|| m.first(l)).collect();
            assert_eq!(got, vec![3, 1, 4, 11, 5]);
            assert!(m.is_empty(l));
        }
    }

    #[test]
    fn lists_are_independent() {
        for m in modules() {
            m.enqueue(ListId(0), 7);
            m.enqueue(ListId(1), 9);
            assert_eq!(m.first(ListId(1)), Some(9));
            assert_eq!(m.first(ListId(0)), Some(7));
        }
    }

    #[test]
    fn dequeue_removes_element() {
        for m in modules() {
            let l = ListId(0);
            for e in [10u16, 20, 30] {
                m.enqueue(l, e);
            }
            m.dequeue(l, 20);
            let got: Vec<u16> = std::iter::from_fn(|| m.first(l)).collect();
            assert_eq!(got, vec![10, 30]);
            // Removing a missing element is a no-operation.
            m.dequeue(l, 55);
            m.enqueue(l, 55);
            assert_eq!(m.first(l), Some(55));
        }
    }

    /// The concurrency contract, exercised the way the runtime uses the
    /// lists (a control block is on at most one list at a time): 64
    /// elements circulate between two lists under four racing threads, and
    /// at the end every element is back, exactly once.
    #[test]
    fn concurrent_circulation_conserves_elements() {
        for m in modules() {
            let blocks = 64u16;
            for e in 0..blocks {
                m.enqueue(ListId(0), e);
            }
            let mut handles = Vec::new();
            for t in 0..4usize {
                let m = Arc::clone(&m);
                // Two threads move 0 → 1, two move 1 → 0.
                let (src, dst) = if t % 2 == 0 {
                    (ListId(0), ListId(1))
                } else {
                    (ListId(1), ListId(0))
                };
                handles.push(std::thread::spawn(move || {
                    let mut moved = 0usize;
                    let mut idle = 0usize;
                    while moved < 20_000 && idle < 200_000 {
                        match m.first(src) {
                            Some(e) => {
                                m.enqueue(dst, e);
                                moved += 1;
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut seen: Vec<u16> = std::iter::from_fn(|| m.first(ListId(0)))
                .chain(std::iter::from_fn(|| m.first(ListId(1))))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..blocks).collect::<Vec<u16>>());
        }
    }
}
