//! The controller's internal table of outstanding block transfers (§5.2).
//!
//! Each `block transfer` request is cached here — address, byte count,
//! direction, requester priority, and a progress cursor — so the memory can
//! multiplex simultaneous transfers, restart a preempted lower-priority one,
//! and match `block read data` / `block write data` streams to their
//! transaction by tag. Four `TG` lines bound the table at sixteen entries.

use smartbus::{BlockDirection, SlaveError, Tag};

/// One outstanding block transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Identifying tag returned on the `TG` lines.
    pub tag: Tag,
    /// Starting byte address.
    pub addr: u16,
    /// Total bytes to move.
    pub count: u16,
    /// Transfer direction.
    pub direction: BlockDirection,
    /// Bytes already moved.
    pub done: u16,
    /// Requesting unit's arbitration priority.
    pub priority: u8,
}

impl BlockEntry {
    /// Next byte address to transfer.
    pub fn cursor(&self) -> u16 {
        self.addr.wrapping_add(self.done)
    }

    /// Whether the whole block has been moved.
    pub fn is_complete(&self) -> bool {
        self.done >= self.count
    }
}

/// The block-request table; at most [`BlockTable::CAPACITY`] live entries.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    entries: Vec<BlockEntry>,
    next_tag: u8,
}

impl BlockTable {
    /// Sixteen entries: the tag bus is four bits wide (Table 5.1).
    pub const CAPACITY: usize = 16;

    /// Creates an empty table.
    pub fn new() -> BlockTable {
        BlockTable::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a transfer, allocating a fresh tag.
    ///
    /// # Errors
    ///
    /// [`SlaveError::BlockTableFull`] when all sixteen tags are live.
    pub fn insert(
        &mut self,
        addr: u16,
        count: u16,
        direction: BlockDirection,
        priority: u8,
    ) -> Result<Tag, SlaveError> {
        if self.entries.len() >= Self::CAPACITY {
            return Err(SlaveError::BlockTableFull);
        }
        // Allocate the next free 4-bit tag (round robin so recently-retired
        // tags are not immediately reused, which aids debugging).
        let tag = (0..=15u8)
            .map(|i| (self.next_tag.wrapping_add(i)) & 0x0F)
            .find(|t| self.entries.iter().all(|e| e.tag.0 != *t))
            .expect("capacity check guarantees a free tag");
        self.next_tag = (tag + 1) & 0x0F;
        self.entries.push(BlockEntry {
            tag: Tag(tag),
            addr,
            count,
            direction,
            done: 0,
            priority,
        });
        Ok(Tag(tag))
    }

    /// Looks up an entry by tag.
    pub fn get(&self, tag: Tag) -> Option<&BlockEntry> {
        self.entries.iter().find(|e| e.tag == tag)
    }

    /// Mutable lookup by tag.
    pub fn get_mut(&mut self, tag: Tag) -> Option<&mut BlockEntry> {
        self.entries.iter_mut().find(|e| e.tag == tag)
    }

    /// Removes an entry (transfer complete or aborted).
    pub fn remove(&mut self, tag: Tag) -> Option<BlockEntry> {
        let idx = self.entries.iter().position(|e| e.tag == tag)?;
        Some(self.entries.remove(idx))
    }

    /// The highest-priority pending *read* transfer — the one the memory
    /// masters the bus for next. Ties break toward the older request.
    pub fn next_read(&self) -> Option<Tag> {
        self.entries
            .iter()
            .filter(|e| e.direction == BlockDirection::Read && !e.is_complete())
            .max_by(|a, b| a.priority.cmp(&b.priority))
            .map(|e| e.tag)
    }

    /// Iterates over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &BlockEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = BlockTable::new();
        let tag = t.insert(0x100, 40, BlockDirection::Read, 3).unwrap();
        assert_eq!(t.len(), 1);
        let e = t.get(tag).unwrap();
        assert_eq!(e.addr, 0x100);
        assert_eq!(e.cursor(), 0x100);
        assert!(!e.is_complete());
        t.get_mut(tag).unwrap().done = 40;
        assert!(t.get(tag).unwrap().is_complete());
        assert!(t.remove(tag).is_some());
        assert!(t.is_empty());
        assert!(t.remove(tag).is_none());
    }

    #[test]
    fn capacity_is_sixteen_tags() {
        let mut t = BlockTable::new();
        for _ in 0..BlockTable::CAPACITY {
            t.insert(0, 2, BlockDirection::Write, 0).unwrap();
        }
        assert_eq!(
            t.insert(0, 2, BlockDirection::Write, 0),
            Err(SlaveError::BlockTableFull)
        );
    }

    #[test]
    fn tags_unique_while_live() {
        let mut t = BlockTable::new();
        let mut tags = std::collections::HashSet::new();
        for _ in 0..BlockTable::CAPACITY {
            let tag = t.insert(0, 2, BlockDirection::Read, 0).unwrap();
            assert!(tags.insert(tag));
        }
    }

    #[test]
    fn next_read_prefers_priority() {
        let mut t = BlockTable::new();
        let lo = t.insert(0, 40, BlockDirection::Read, 1).unwrap();
        let hi = t.insert(64, 40, BlockDirection::Read, 6).unwrap();
        let _wr = t.insert(128, 40, BlockDirection::Write, 7).unwrap();
        assert_eq!(t.next_read(), Some(hi));
        t.remove(hi);
        assert_eq!(t.next_read(), Some(lo));
        t.remove(lo);
        assert_eq!(t.next_read(), None);
    }

    #[test]
    fn tag_reuse_after_retirement() {
        let mut t = BlockTable::new();
        for _ in 0..100 {
            let tag = t.insert(0, 2, BlockDirection::Write, 0).unwrap();
            t.remove(tag);
        }
        assert!(t.is_empty());
    }
}
