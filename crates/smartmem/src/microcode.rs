//! An executable micro-machine for the smart memory controller
//! (Appendix A).
//!
//! The thesis's feasibility argument rests on a microprogrammed controller:
//! a small data path (registers + ALU + memory port) driven by a
//! micro-sequencer whose control store holds under 3000 bits. This module
//! implements that machine *for real*: a 24-bit micro-instruction encoding
//! (§A.3), a register file, a micro-sequencer with conditional branching,
//! and hand-written micro-routines for the atomic queue primitives
//! (§A.4.5–§A.4.7) executed against the actual [`Memory`] image.
//!
//! The microcoded primitives are differentially tested against the
//! high-level [`crate::queue`] implementations — both must produce
//! identical memory images and results for every operation sequence.

use crate::memory::Memory;
use crate::NULL_PTR;
use smartbus::SlaveError;

/// Data-path registers (Figure A.2). `Zero` reads as the distinguished
/// NULL value and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Reg {
    /// Constant NULL/zero source.
    Zero = 0,
    /// Anchor (list) address latched from the bus.
    List = 1,
    /// Element address latched from the bus.
    Elem = 2,
    /// Tail pointer.
    Tail = 3,
    /// Walk cursor.
    Curr = 4,
    /// Walk predecessor.
    Prev = 5,
    /// Scratch.
    Tmp = 6,
    /// Result driven back onto the bus.
    Res = 7,
    /// Loop guard counter (corrupt-list watchdog).
    Count = 8,
}

const REG_COUNT: usize = 9;

/// Completion status of a micro-routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Completed normally.
    Ok,
    /// The corrupt-list watchdog expired (§A.5.2).
    CorruptList,
}

/// Micro-operations (the §A.3 instruction format's opcode field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `a <- MEM[b]`
    Load,
    /// `MEM[a] <- b`
    Store,
    /// `a <- b`
    Mov,
    /// `Z <- (a == b)`
    Cmp,
    /// `a <- a - 1; Z <- (a == 0)`
    Dec,
    /// Unconditional branch to `target`.
    Jmp,
    /// Branch to `target` when Z.
    Bz,
    /// Branch to `target` when not Z.
    Bnz,
    /// Stop with [`Status::Ok`].
    Halt,
    /// Stop with [`Status::CorruptList`].
    Fault,
}

/// One 24-bit micro-instruction: `[op:4][a:4][b:4][target:8]` with four
/// spare bits — the §A.3 format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroInstruction(u32);

/// Width of the encoded micro-instruction in bits.
pub const MICRO_WORD_BITS: u32 = 24;

impl MicroInstruction {
    fn new(op: Op, a: Reg, b: Reg, target: u8) -> MicroInstruction {
        let op_bits = match op {
            Op::Load => 0u32,
            Op::Store => 1,
            Op::Mov => 2,
            Op::Cmp => 3,
            Op::Dec => 4,
            Op::Jmp => 5,
            Op::Bz => 6,
            Op::Bnz => 7,
            Op::Halt => 8,
            Op::Fault => 9,
        };
        MicroInstruction(
            (op_bits << 20) | ((a as u32) << 16) | ((b as u32) << 12) | u32::from(target),
        )
    }

    fn op(self) -> Op {
        match self.0 >> 20 {
            0 => Op::Load,
            1 => Op::Store,
            2 => Op::Mov,
            3 => Op::Cmp,
            4 => Op::Dec,
            5 => Op::Jmp,
            6 => Op::Bz,
            7 => Op::Bnz,
            8 => Op::Halt,
            _ => Op::Fault,
        }
    }

    fn a(self) -> usize {
        ((self.0 >> 16) & 0xF) as usize
    }

    fn b(self) -> usize {
        ((self.0 >> 12) & 0xF) as usize
    }

    fn target(self) -> usize {
        (self.0 & 0xFF) as usize
    }

    /// The raw 24-bit word.
    pub fn word(self) -> u32 {
        self.0 & 0x00FF_FFFF
    }
}

/// A micro-routine: a slice of the control store.
#[derive(Debug, Clone)]
pub struct MicroRoutine {
    /// Routine name per the §A.4 listing.
    pub name: &'static str,
    code: Vec<MicroInstruction>,
}

impl MicroRoutine {
    /// Control-store bits this routine occupies.
    pub fn control_bits(&self) -> u32 {
        self.code.len() as u32 * MICRO_WORD_BITS
    }

    /// Number of micro-instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the routine is empty (never, for the shipped routines).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

fn mi(op: Op, a: Reg, b: Reg, t: u8) -> MicroInstruction {
    MicroInstruction::new(op, a, b, t)
}

/// §A.4.5 — ENQUEUE CONTROL BLOCK. Entry: `List` = anchor address,
/// `Elem` = element address.
pub fn enqueue_routine() -> MicroRoutine {
    use Op::*;
    use Reg::*;
    MicroRoutine {
        name: "ENQUEUE CONTROL BLOCK",
        code: vec![
            /* 0 */ mi(Load, Tail, List, 0), // tail <- MEM[anchor]
            /* 1 */ mi(Cmp, Tail, Zero, 0), // empty list?
            /* 2 */ mi(Bz, Zero, Zero, 6), // -> singleton case
            /* 3 */ mi(Load, Tmp, Tail, 0), // first <- tail->next
            /* 4 */ mi(Store, Elem, Tmp, 0), // element->next <- first
            /* 5 */ mi(Jmp, Zero, Zero, 7),
            /* 6 */ mi(Mov, Tmp, Elem, 0), // element->next <- element
            /* 7 */ mi(Store, Elem, Tmp, 0), // (joined path: stores Tmp)
            /* 8 */ mi(Cmp, Tail, Zero, 0),
            /* 9 */ mi(Bz, Zero, Zero, 11), // empty: skip tail link
            /*10 */ mi(Store, Tail, Elem, 0), // tail->next <- element
            /*11 */ mi(Store, List, Elem, 0), // anchor <- element
            /*12 */ mi(Halt, Zero, Zero, 0),
        ],
    }
}

/// §A.4.6 — FIRST CONTROL BLOCK. Entry: `List` = anchor address. Exit:
/// `Res` = head element or NULL.
pub fn first_routine() -> MicroRoutine {
    use Op::*;
    use Reg::*;
    MicroRoutine {
        name: "FIRST CONTROL BLOCK",
        code: vec![
            /* 0 */ mi(Load, Tail, List, 0), // tail <- MEM[anchor]
            /* 1 */ mi(Cmp, Tail, Zero, 0),
            /* 2 */ mi(Bz, Zero, Zero, 10), // empty -> Res = NULL
            /* 3 */ mi(Load, Res, Tail, 0), // head <- tail->next
            /* 4 */ mi(Cmp, Res, Tail, 0), // single element?
            /* 5 */ mi(Bz, Zero, Zero, 11), // -> clear anchor
            /* 6 */ mi(Load, Tmp, Res, 0), // second <- head->next
            /* 7 */ mi(Store, Tail, Tmp, 0), // tail->next <- second
            /* 8 */ mi(Halt, Zero, Zero, 0),
            /* 9 */ mi(Halt, Zero, Zero, 0), // (alignment spare)
            /*10 */ mi(Mov, Res, Zero, 0), // Res <- NULL
            /*11 */ mi(Store, List, Zero, 0), // anchor <- NULL (empty path:
            //         harmless re-clear; singleton path: required)
            /*12 */
            mi(Halt, Zero, Zero, 0),
        ],
    }
}

/// §A.4.7 — DEQUEUE CONTROL BLOCK. Entry: `List` = anchor address,
/// `Elem` = element to remove, `Count` = watchdog bound.
pub fn dequeue_routine() -> MicroRoutine {
    use Op::*;
    use Reg::*;
    MicroRoutine {
        name: "DEQUEUE CONTROL BLOCK",
        code: vec![
            /* 0 */ mi(Load, Tail, List, 0), // tail <- MEM[anchor]
            /* 1 */ mi(Cmp, Tail, Zero, 0),
            /* 2 */ mi(Bz, Zero, Zero, 18), // empty: no-op
            /* 3 */ mi(Mov, Curr, Tail, 0),
            // loop:
            /* 4 */ mi(Mov, Prev, Curr, 0),
            /* 5 */ mi(Load, Curr, Prev, 0), // curr <- prev->next
            /* 6 */ mi(Cmp, Curr, Elem, 0),
            /* 7 */ mi(Bz, Zero, Zero, 12), // found
            /* 8 */ mi(Cmp, Curr, Tail, 0),
            /* 9 */ mi(Bz, Zero, Zero, 18), // walked the whole cycle
            /*10 */ mi(Dec, Count, Zero, 0), // watchdog
            /*11 */ mi(Bnz, Zero, Zero, 4), // keep walking
            //      watchdog expired:
            /*12 */
            mi(Cmp, Curr, Elem, 0), // (re-test: fall-through from 11 means fault)
            /*13 */ mi(Bnz, Zero, Zero, 19), // not found + expired -> fault
            // found:
            /*14 */ mi(Cmp, Curr, Prev, 0), // singleton?
            /*15 */ mi(Bz, Zero, Zero, 20),
            /*16 */ mi(Load, Tmp, Elem, 0), // after <- element->next
            /*17 */ mi(Store, Prev, Tmp, 0), // prev->next <- after
            //      fix anchor if tail removed, then halt:
            /*18 */
            mi(Jmp, Zero, Zero, 21),
            /*19 */ mi(Fault, Zero, Zero, 0),
            /*20 */ mi(Store, List, Zero, 0), // singleton: anchor <- NULL
            /*21 */ mi(Cmp, Tail, Elem, 0),
            /*22 */ mi(Bnz, Zero, Zero, 25),
            /*23 */ mi(Cmp, Curr, Prev, 0), // singleton already handled
            /*24 */ mi(Bnz, Zero, Zero, 26),
            /*25 */ mi(Halt, Zero, Zero, 0),
            /*26 */ mi(Store, List, Prev, 0), // anchor <- prev
            /*27 */ mi(Halt, Zero, Zero, 0),
        ],
    }
}

/// The micro-sequencer: executes a routine against the memory image.
#[derive(Debug)]
pub struct Sequencer {
    regs: [u16; REG_COUNT],
    zero_flag: bool,
    cycles: u64,
}

impl Default for Sequencer {
    fn default() -> Self {
        Sequencer::new()
    }
}

impl Sequencer {
    /// A sequencer with cleared registers.
    pub fn new() -> Sequencer {
        Sequencer {
            regs: [0; REG_COUNT],
            zero_flag: false,
            cycles: 0,
        }
    }

    /// Latches a register from the bus (the `LatchBus` step).
    pub fn latch(&mut self, reg: Reg, value: u16) {
        if reg != Reg::Zero {
            self.regs[reg as usize] = value;
        }
    }

    /// Reads a register (e.g. `Res` after FIRST).
    pub fn reg(&self, reg: Reg) -> u16 {
        if reg == Reg::Zero {
            NULL_PTR
        } else {
            self.regs[reg as usize]
        }
    }

    /// Micro-cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn get(&self, idx: usize) -> u16 {
        if idx == Reg::Zero as usize {
            NULL_PTR
        } else {
            self.regs[idx]
        }
    }

    fn set(&mut self, idx: usize, value: u16) {
        if idx != Reg::Zero as usize {
            self.regs[idx] = value;
        }
    }

    /// Runs `routine` to completion against `mem`.
    ///
    /// # Errors
    ///
    /// Propagates memory range errors; a watchdog fault surfaces as
    /// [`Status::CorruptList`], not an error.
    pub fn run(&mut self, routine: &MicroRoutine, mem: &mut Memory) -> Result<Status, SlaveError> {
        let mut pc = 0usize;
        loop {
            let inst = routine.code[pc];
            self.cycles += 1;
            pc += 1;
            match inst.op() {
                Op::Load => {
                    let addr = self.get(inst.b());
                    let v = mem.read_word(addr)?;
                    self.set(inst.a(), v);
                }
                Op::Store => {
                    let addr = self.get(inst.a());
                    mem.write_word(addr, self.get(inst.b()))?;
                }
                Op::Mov => {
                    let v = self.get(inst.b());
                    self.set(inst.a(), v);
                }
                Op::Cmp => {
                    self.zero_flag = self.get(inst.a()) == self.get(inst.b());
                }
                Op::Dec => {
                    let v = self.get(inst.a()).wrapping_sub(1);
                    self.set(inst.a(), v);
                    self.zero_flag = v == 0;
                }
                Op::Jmp => pc = inst.target(),
                Op::Bz => {
                    if self.zero_flag {
                        pc = inst.target();
                    }
                }
                Op::Bnz => {
                    if !self.zero_flag {
                        pc = inst.target();
                    }
                }
                Op::Halt => return Ok(Status::Ok),
                Op::Fault => return Ok(Status::CorruptList),
            }
        }
    }
}

/// Convenience wrappers: run a primitive via microcode.
pub mod exec {
    use super::*;

    /// Microcoded `Enqueue(element, list)`.
    ///
    /// # Errors
    ///
    /// Propagates memory range errors.
    pub fn enqueue(mem: &mut Memory, list: u16, element: u16) -> Result<Status, SlaveError> {
        let mut seq = Sequencer::new();
        seq.latch(Reg::List, list);
        seq.latch(Reg::Elem, element);
        seq.run(&enqueue_routine(), mem)
    }

    /// Microcoded `First(list)`: returns the dequeued head, `None` when
    /// empty.
    ///
    /// # Errors
    ///
    /// Propagates memory range errors.
    pub fn first(mem: &mut Memory, list: u16) -> Result<Option<u16>, SlaveError> {
        let mut seq = Sequencer::new();
        seq.latch(Reg::List, list);
        seq.run(&first_routine(), mem)?;
        let r = seq.reg(Reg::Res);
        Ok(if r == NULL_PTR { None } else { Some(r) })
    }

    /// Microcoded `Dequeue(element, list)`.
    ///
    /// # Errors
    ///
    /// [`SlaveError::CorruptList`] when the watchdog expires; memory range
    /// errors otherwise.
    pub fn dequeue(mem: &mut Memory, list: u16, element: u16) -> Result<(), SlaveError> {
        let mut seq = Sequencer::new();
        seq.latch(Reg::List, list);
        seq.latch(Reg::Elem, element);
        seq.latch(Reg::Count, (mem.size() / 2 + 2) as u16);
        match seq.run(&dequeue_routine(), mem)? {
            Status::Ok => Ok(()),
            Status::CorruptList => Err(SlaveError::CorruptList { list }),
        }
    }
}

/// Total control-store bits for the three queue routines — the Appendix A
/// "under 3000 bits" budget covers them with room for the block-transfer
/// and read/write routines (which the controller implements in its
/// datapath FSM here).
pub fn queue_control_bits() -> u32 {
    enqueue_routine().control_bits()
        + first_routine().control_bits()
        + dequeue_routine().control_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue;

    const LIST: u16 = 0x10;

    #[test]
    fn microcoded_enqueue_matches_high_level() {
        let mut hw = Memory::new(1024);
        let mut sw = Memory::new(1024);
        for e in [0x100u16, 0x200, 0x300] {
            exec::enqueue(&mut hw, LIST, e).unwrap();
            queue::enqueue(&mut sw, LIST, e).unwrap();
        }
        assert_eq!(hw.dump(0, 1024).unwrap(), sw.dump(0, 1024).unwrap());
        assert_eq!(
            queue::elements(&mut hw, LIST).unwrap(),
            vec![0x100, 0x200, 0x300]
        );
    }

    #[test]
    fn microcoded_first_matches_high_level() {
        let mut hw = Memory::new(1024);
        for e in [0x100u16, 0x200] {
            exec::enqueue(&mut hw, LIST, e).unwrap();
        }
        assert_eq!(exec::first(&mut hw, LIST).unwrap(), Some(0x100));
        assert_eq!(exec::first(&mut hw, LIST).unwrap(), Some(0x200));
        assert_eq!(exec::first(&mut hw, LIST).unwrap(), None);
        // Anchor holds NULL afterwards.
        assert_eq!(hw.read_word(LIST).unwrap(), NULL_PTR);
    }

    #[test]
    fn microcoded_dequeue_cases() {
        // middle / tail / singleton / missing — against the high-level
        // implementation.
        for victim in [0x200u16, 0x300, 0x100, 0x999] {
            let mut hw = Memory::new(1024);
            let mut sw = Memory::new(1024);
            for e in [0x100u16, 0x200, 0x300] {
                exec::enqueue(&mut hw, LIST, e).unwrap();
                queue::enqueue(&mut sw, LIST, e).unwrap();
            }
            exec::dequeue(&mut hw, LIST, victim).unwrap();
            queue::dequeue(&mut sw, LIST, victim).unwrap();
            assert_eq!(
                queue::elements(&mut hw, LIST).unwrap(),
                queue::elements(&mut sw, LIST).unwrap(),
                "victim {victim:#x}"
            );
            assert_eq!(hw.read_word(LIST).unwrap(), sw.read_word(LIST).unwrap());
        }
        // Singleton removal empties the list.
        let mut hw = Memory::new(1024);
        exec::enqueue(&mut hw, LIST, 0x100).unwrap();
        exec::dequeue(&mut hw, LIST, 0x100).unwrap();
        assert_eq!(hw.read_word(LIST).unwrap(), NULL_PTR);
    }

    #[test]
    fn watchdog_catches_corrupt_list() {
        let mut hw = Memory::new(1024);
        hw.write_word(LIST, 0x100).unwrap();
        hw.write_word(0x100, 0x102).unwrap();
        hw.write_word(0x102, 0x104).unwrap();
        hw.write_word(0x104, 0x102).unwrap(); // lasso skipping the tail
        let err = exec::dequeue(&mut hw, LIST, 0x998).unwrap_err();
        assert!(matches!(err, SlaveError::CorruptList { list: LIST }));
    }

    #[test]
    fn control_store_budget_appendix_a() {
        let bits = queue_control_bits();
        assert!(bits < 3_000, "queue routines use {bits} bits");
        // And the encoding honors the 24-bit word.
        for r in [enqueue_routine(), first_routine(), dequeue_routine()] {
            for i in &r.code {
                assert!(i.word() < (1 << 24));
            }
        }
    }

    #[test]
    fn cycle_counts_are_small_constants() {
        // Enqueue/first complete in O(1) micro-cycles — the hardware-speed
        // claim behind Table 6.1's arch-III column.
        let mut hw = Memory::new(1024);
        let mut seq = Sequencer::new();
        seq.latch(Reg::List, LIST);
        seq.latch(Reg::Elem, 0x100);
        seq.run(&enqueue_routine(), &mut hw).unwrap();
        assert!(seq.cycles() <= 13, "{}", seq.cycles());
    }
}
