//! Atomic queue primitives on singly-linked circular lists (§5.1).
//!
//! The shared memory holds two kinds of control blocks — task control blocks
//! and kernel buffers — linked into singly-linked *circular* lists. A list
//! anchor is a memory cell holding a pointer to the **tail** (last element);
//! the tail's `next` pointer reaches the head, so both enqueue-at-tail and
//! dequeue-at-head are O(1). Each control block stores its `next` pointer in
//! its first word. The distinguished NULL value ([`crate::NULL_PTR`]) marks
//! an empty list.
//!
//! The three primitives below are transliterations of the paper's
//! pseudo-code. On the real hardware they execute atomically inside the
//! memory controller during a single bus transaction; here atomicity is
//! inherent because the functions run to completion on the memory image.

use crate::memory::Memory;
use crate::NULL_PTR;
use smartbus::SlaveError;

/// Offset of the `next` pointer within a control block.
pub const NEXT_OFFSET: u16 = 0;

fn read_next(mem: &mut Memory, block: u16) -> Result<u16, SlaveError> {
    mem.read_word(block + NEXT_OFFSET)
}

fn write_next(mem: &mut Memory, block: u16, next: u16) -> Result<(), SlaveError> {
    mem.write_word(block + NEXT_OFFSET, next)
}

/// `Enqueue(element, list)`: appends `element` at the tail and repoints the
/// anchor at it.
///
/// # Errors
///
/// [`SlaveError::AddressOutOfRange`] if the anchor or a link is outside the
/// module.
pub fn enqueue(mem: &mut Memory, list: u16, element: u16) -> Result<(), SlaveError> {
    let tail = mem.read_word(list)?;
    if tail != NULL_PTR {
        // Non-empty list: element slots in after the old tail, pointing at
        // the head the old tail used to reach.
        let first = read_next(mem, tail)?;
        write_next(mem, element, first)?;
        write_next(mem, tail, element)?;
    } else {
        // First entry on the list: the only member points at itself.
        write_next(mem, element, element)?;
    }
    // Element is the new tail.
    mem.write_word(list, element)
}

/// `First(list)`: dequeues and returns the head element, or `None` (the
/// distinguished value) when the list is empty.
///
/// # Errors
///
/// [`SlaveError::AddressOutOfRange`] if the anchor or a link is outside the
/// module.
pub fn first(mem: &mut Memory, list: u16) -> Result<Option<u16>, SlaveError> {
    let tail = mem.read_word(list)?;
    if tail == NULL_PTR {
        return Ok(None);
    }
    let head = read_next(mem, tail)?;
    if tail == head {
        // Last element in the list.
        mem.write_word(list, NULL_PTR)?;
    } else {
        let second = read_next(mem, head)?;
        write_next(mem, tail, second)?;
    }
    Ok(Some(head))
}

/// `Dequeue(element, list)`: removes an arbitrary `element`; a no-operation
/// when the element is not on the list.
///
/// # Errors
///
/// * [`SlaveError::AddressOutOfRange`] if the anchor or a link is outside
///   the module.
/// * [`SlaveError::CorruptList`] if following `next` pointers does not
///   return to the tail within the memory bound (a broken circular list).
pub fn dequeue(mem: &mut Memory, list: u16, element: u16) -> Result<(), SlaveError> {
    let tail = mem.read_word(list)?;
    if tail == NULL_PTR {
        return Ok(()); // empty list: unsuccessful, no-operation
    }
    let mut prev;
    let mut curr = tail;
    // Any well-formed circular list in a memory of N words has at most N
    // distinct nodes; more iterations means the links do not cycle back.
    let bound = mem.size() / 2 + 2;
    for _ in 0..bound {
        prev = curr;
        curr = read_next(mem, prev)?;
        if curr == element {
            if curr == prev {
                // Singleton element.
                mem.write_word(list, NULL_PTR)?;
            } else {
                let after = read_next(mem, element)?;
                write_next(mem, prev, after)?;
                if tail == element {
                    mem.write_word(list, prev)?;
                }
            }
            return Ok(());
        }
        if curr == tail {
            return Ok(()); // walked the whole cycle: unsuccessful
        }
    }
    Err(SlaveError::CorruptList { list })
}

/// Collects the list's elements head→tail without modifying it — a test and
/// debugging aid, not a bus primitive.
///
/// # Errors
///
/// [`SlaveError::CorruptList`] if the links do not cycle back to the tail.
pub fn elements(mem: &mut Memory, list: u16) -> Result<Vec<u16>, SlaveError> {
    let tail = mem.read_word(list)?;
    if tail == NULL_PTR {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut curr = read_next(mem, tail)?; // head
    let bound = mem.size() / 2 + 2;
    for _ in 0..bound {
        out.push(curr);
        if curr == tail {
            return Ok(out);
        }
        curr = read_next(mem, curr)?;
    }
    Err(SlaveError::CorruptList { list })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST: u16 = 0x10;

    fn mem() -> Memory {
        Memory::new(4096)
    }

    #[test]
    fn enqueue_builds_circular_list() {
        let mut m = mem();
        enqueue(&mut m, LIST, 0x100).unwrap();
        enqueue(&mut m, LIST, 0x200).unwrap();
        enqueue(&mut m, LIST, 0x300).unwrap();
        assert_eq!(elements(&mut m, LIST).unwrap(), vec![0x100, 0x200, 0x300]);
        // Tail's next wraps to the head.
        assert_eq!(m.read_word(0x300).unwrap(), 0x100);
    }

    #[test]
    fn first_is_fifo() {
        let mut m = mem();
        for e in [0x100, 0x200, 0x300] {
            enqueue(&mut m, LIST, e).unwrap();
        }
        assert_eq!(first(&mut m, LIST).unwrap(), Some(0x100));
        assert_eq!(first(&mut m, LIST).unwrap(), Some(0x200));
        assert_eq!(first(&mut m, LIST).unwrap(), Some(0x300));
        assert_eq!(first(&mut m, LIST).unwrap(), None);
        // And the anchor holds the distinguished value.
        assert_eq!(m.read_word(LIST).unwrap(), NULL_PTR);
    }

    #[test]
    fn first_of_empty_is_null() {
        let mut m = mem();
        assert_eq!(first(&mut m, LIST).unwrap(), None);
    }

    #[test]
    fn dequeue_middle_element() {
        let mut m = mem();
        for e in [0x100, 0x200, 0x300] {
            enqueue(&mut m, LIST, e).unwrap();
        }
        dequeue(&mut m, LIST, 0x200).unwrap();
        assert_eq!(elements(&mut m, LIST).unwrap(), vec![0x100, 0x300]);
    }

    #[test]
    fn dequeue_tail_repoints_anchor() {
        let mut m = mem();
        for e in [0x100, 0x200] {
            enqueue(&mut m, LIST, e).unwrap();
        }
        dequeue(&mut m, LIST, 0x200).unwrap();
        assert_eq!(m.read_word(LIST).unwrap(), 0x100);
        assert_eq!(elements(&mut m, LIST).unwrap(), vec![0x100]);
    }

    #[test]
    fn dequeue_singleton_empties_list() {
        let mut m = mem();
        enqueue(&mut m, LIST, 0x100).unwrap();
        dequeue(&mut m, LIST, 0x100).unwrap();
        assert_eq!(m.read_word(LIST).unwrap(), NULL_PTR);
        assert_eq!(elements(&mut m, LIST).unwrap(), Vec::<u16>::new());
    }

    #[test]
    fn dequeue_missing_is_noop() {
        let mut m = mem();
        for e in [0x100, 0x200] {
            enqueue(&mut m, LIST, e).unwrap();
        }
        dequeue(&mut m, LIST, 0x999).unwrap();
        assert_eq!(elements(&mut m, LIST).unwrap(), vec![0x100, 0x200]);
        // Empty list is also a no-op.
        let mut m2 = mem();
        dequeue(&mut m2, LIST, 0x100).unwrap();
    }

    #[test]
    fn corrupt_list_detected() {
        let mut m = mem();
        // Anchor points at a block whose next chain never returns: build a
        // "lasso" 0x100 -> 0x102 -> 0x104 -> 0x102 ... with tail 0x100 never
        // reappearing... A circular-but-wrong-cycle list: dequeue of a
        // missing element terminates when it sees the tail again, so make a
        // cycle that skips the tail.
        m.write_word(LIST, 0x100).unwrap();
        m.write_word(0x100, 0x102).unwrap();
        m.write_word(0x102, 0x104).unwrap();
        m.write_word(0x104, 0x102).unwrap(); // cycle 0x102 <-> 0x104, tail lost
        let err = dequeue(&mut m, LIST, 0x999).unwrap_err();
        assert!(matches!(err, SlaveError::CorruptList { list: LIST }));
        let err = elements(&mut m, LIST).unwrap_err();
        assert!(matches!(err, SlaveError::CorruptList { .. }));
    }

    #[test]
    fn interleaved_operations_keep_invariants() {
        let mut m = mem();
        let mut model: std::collections::VecDeque<u16> = std::collections::VecDeque::new();
        // Deterministic interleaving of enqueue/first/dequeue mirrored in a
        // VecDeque model.
        for i in 0..200u16 {
            let e = 0x100 + i * 2;
            match i % 5 {
                0..=2 => {
                    enqueue(&mut m, LIST, e).unwrap();
                    model.push_back(e);
                }
                3 => {
                    let got = first(&mut m, LIST).unwrap();
                    assert_eq!(got, model.pop_front());
                }
                _ => {
                    if let Some(&victim) = model.get(model.len() / 2) {
                        dequeue(&mut m, LIST, victim).unwrap();
                        model.retain(|&x| x != victim);
                    }
                }
            }
            let got = elements(&mut m, LIST).unwrap();
            let want: Vec<u16> = model.iter().copied().collect();
            assert_eq!(got, want, "after step {i}");
        }
    }
}
