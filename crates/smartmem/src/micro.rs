//! The microprogrammed controller design (Appendix A).
//!
//! The thesis argues the smart memory is *feasible and cheap*: the whole
//! controller fits a micro-sequencer with under 3000 bits of control store
//! and a data-path chip of roughly 6000 active components. This module
//! captures that design quantitatively — one micro-routine per bus command,
//! with micro-cycle budgets per §A.4 — so the crate can report controller
//! occupancy and the feasibility numbers can be checked in tests.

use smartbus::Command;

/// One micro-operation class of the data path (§A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroOp {
    /// Latch the command/tag/address from the bus.
    LatchBus,
    /// Read a word from the memory array.
    ReadMem,
    /// Write a word to the memory array.
    WriteMem,
    /// ALU operation (address increment, count decrement, compare).
    Alu,
    /// Compare a register against the distinguished NULL value.
    CompareNull,
    /// Conditional branch in the micro-sequencer.
    Branch,
    /// Allocate or look up a block-table entry.
    TableOp,
    /// Drive a reply (tag / data / ack) onto the bus.
    DriveBus,
}

/// A micro-routine: the straight-line op budget of one bus command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroRoutine {
    /// Routine name, per the §A.4 listing.
    pub name: &'static str,
    /// Micro-op sequence of the common (non-looping) path.
    pub ops: Vec<MicroOp>,
    /// Extra micro-ops per word moved / per list node visited.
    pub per_item_ops: Vec<MicroOp>,
}

impl MicroRoutine {
    /// Micro-cycles for the fixed path (one cycle per op).
    pub fn fixed_cycles(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Micro-cycles for `items` loop iterations.
    pub fn cycles_for(&self, items: u64) -> u64 {
        self.fixed_cycles() + items * self.per_item_ops.len() as u64
    }

    /// Rough control-store bits: one 24-bit micro-instruction per op in the
    /// routine (main path + loop body), matching the §A.3 format.
    pub fn control_bits(&self) -> u64 {
        (self.ops.len() + self.per_item_ops.len()) as u64 * MICRO_INSTRUCTION_BITS
    }
}

/// Width of a micro-instruction word (§A.3 format).
pub const MICRO_INSTRUCTION_BITS: u64 = 24;

/// The §A.4 micro-routine for a bus command.
pub fn routine_for(command: Command) -> MicroRoutine {
    use MicroOp::*;
    match command {
        Command::SimpleRead => MicroRoutine {
            name: "READ",
            ops: vec![LatchBus, ReadMem, DriveBus],
            per_item_ops: vec![],
        },
        Command::WriteTwoBytes | Command::WriteByte => MicroRoutine {
            name: "WRITE",
            ops: vec![LatchBus, WriteMem, DriveBus],
            per_item_ops: vec![],
        },
        Command::BlockTransfer => MicroRoutine {
            name: "BLOCK TRANSFER",
            ops: vec![LatchBus, TableOp, Alu, DriveBus],
            per_item_ops: vec![],
        },
        Command::BlockReadData => MicroRoutine {
            name: "BLOCK READ DATA",
            ops: vec![TableOp, Branch],
            per_item_ops: vec![ReadMem, Alu, DriveBus],
        },
        Command::BlockWriteData => MicroRoutine {
            name: "BLOCK WRITE DATA",
            ops: vec![LatchBus, TableOp, Branch],
            per_item_ops: vec![WriteMem, Alu],
        },
        Command::EnqueueControlBlock => MicroRoutine {
            name: "ENQUEUE CONTROL BLOCK",
            ops: vec![
                LatchBus,
                ReadMem,
                CompareNull,
                Branch,
                ReadMem,
                WriteMem,
                WriteMem,
                WriteMem,
            ],
            per_item_ops: vec![],
        },
        Command::FirstControlBlock => MicroRoutine {
            name: "FIRST CONTROL BLOCK",
            ops: vec![
                LatchBus,
                ReadMem,
                CompareNull,
                Branch,
                ReadMem,
                ReadMem,
                WriteMem,
                DriveBus,
            ],
            per_item_ops: vec![],
        },
        Command::DequeueControlBlock => MicroRoutine {
            name: "DEQUEUE CONTROL BLOCK",
            ops: vec![LatchBus, ReadMem, CompareNull, Branch, WriteMem, WriteMem],
            per_item_ops: vec![ReadMem, Alu, Branch],
        },
    }
}

/// Total control-store budget across all routines plus the main loop.
///
/// The thesis claims the controller microcode fits "under 3000 bits"; the
/// main dispatch loop costs a handful of instructions on top of the
/// per-command routines.
pub fn total_control_bits() -> u64 {
    let main_loop: u64 = 8 * MICRO_INSTRUCTION_BITS; // fetch/dispatch/error
    Command::ALL
        .iter()
        .map(|&c| routine_for(c).control_bits())
        .sum::<u64>()
        + main_loop
}

/// Approximate active-component counts from Table A.1: the data-path chip
/// (~6000 active components) and the sequencer chip (~1000).
pub mod components {
    /// Data-path chip active components (Table A.1 bound).
    pub const DATA_PATH: u32 = 6_000;
    /// Micro-sequencer chip active components.
    pub const SEQUENCER: u32 = 1_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_has_a_routine() {
        for c in Command::ALL {
            let r = routine_for(c);
            assert!(!r.ops.is_empty(), "{c} routine empty");
        }
    }

    #[test]
    fn control_store_under_3000_bits() {
        // Appendix A feasibility claim.
        let bits = total_control_bits();
        assert!(bits < 3_000, "control store {bits} bits");
    }

    #[test]
    fn streaming_routines_scale_per_word() {
        let r = routine_for(Command::BlockReadData);
        assert!(r.cycles_for(20) > r.cycles_for(1));
        assert_eq!(
            r.cycles_for(20) - r.cycles_for(19),
            r.per_item_ops.len() as u64
        );
    }

    #[test]
    fn queue_ops_are_fixed_cost_except_dequeue() {
        assert!(routine_for(Command::EnqueueControlBlock)
            .per_item_ops
            .is_empty());
        assert!(routine_for(Command::FirstControlBlock)
            .per_item_ops
            .is_empty());
        // Dequeue walks the list: per-node cost.
        assert!(!routine_for(Command::DequeueControlBlock)
            .per_item_ops
            .is_empty());
    }
}
