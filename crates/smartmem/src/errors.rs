//! The §A.5 error analysis: what can go wrong at the smart memory, and why
//! the controller is immune to the rest.
//!
//! The thesis argues the controller can stay simple because the environment
//! is *limited and controlled*: only trusted kernel code on the host and MP
//! issues requests, each unit has exactly one outstanding request, and the
//! memory holds only protected kernel data structures. This module encodes
//! the §A.5 taxonomy — block-request errors, queue-manipulation errors, and
//! non-programming (hardware) errors — with, for each, whether the
//! controller detects it, and which [`smartbus::SlaveError`] it raises.

use smartbus::SlaveError;

/// How the controller responds to an error class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handling {
    /// Detected and rejected at request time, before any state changes.
    RejectedUpFront,
    /// Detected during execution; the operation is abandoned and reported.
    DetectedDuringExecution,
    /// Cannot occur in the controlled environment (trusted kernel callers,
    /// one outstanding request per unit); the controller carries no
    /// recovery hardware for it.
    PreventedByEnvironment,
    /// Outside the controller's scope (e.g. parity errors belong to the
    /// memory array / system reset path).
    OutOfScope,
}

/// One §A.5 error condition.
#[derive(Debug, Clone)]
pub struct ErrorCondition {
    /// §A.5 subsection: 1 = block requests, 2 = queue manipulation,
    /// 3 = non-programming errors.
    pub section: u8,
    /// Description of the fault.
    pub description: &'static str,
    /// The controller's response.
    pub handling: Handling,
    /// The error surfaced on the bus, when one is.
    pub surfaced_as: Option<fn() -> SlaveError>,
}

/// The §A.5 catalogue.
pub fn catalogue() -> Vec<ErrorCondition> {
    vec![
        // §A.5.1 — block requests.
        ErrorCondition {
            section: 1,
            description: "block request whose address + count runs past the memory module",
            handling: Handling::RejectedUpFront,
            surfaced_as: Some(|| SlaveError::AddressOutOfRange { addr: 0 }),
        },
        ErrorCondition {
            section: 1,
            description: "more outstanding block transfers than tags (internal table full)",
            handling: Handling::RejectedUpFront,
            surfaced_as: Some(|| SlaveError::BlockTableFull),
        },
        ErrorCondition {
            section: 1,
            description: "streaming data carrying a tag with no table entry",
            handling: Handling::DetectedDuringExecution,
            surfaced_as: Some(|| SlaveError::UnknownTag(smartbus::Tag(0))),
        },
        ErrorCondition {
            section: 1,
            description: "two units streaming against the same tag concurrently",
            handling: Handling::PreventedByEnvironment, // one request per unit; tags are per-request
            surfaced_as: None,
        },
        // §A.5.2 — queue manipulation.
        ErrorCondition {
            section: 2,
            description: "list whose links do not cycle back to the tail",
            handling: Handling::DetectedDuringExecution,
            surfaced_as: Some(|| SlaveError::CorruptList { list: 0 }),
        },
        ErrorCondition {
            section: 2,
            description: "enqueue of an element already on another list",
            handling: Handling::PreventedByEnvironment, // kernel moves control blocks between lists atomically
            surfaced_as: None,
        },
        ErrorCondition {
            section: 2,
            description: "concurrent queue operations interleaving mid-update",
            handling: Handling::PreventedByEnvironment, // each op completes inside one bus transaction
            surfaced_as: None,
        },
        // §A.5.3 — non-programming errors.
        ErrorCondition {
            section: 3,
            description: "memory array parity / ECC fault",
            handling: Handling::OutOfScope,
            surfaced_as: None,
        },
        ErrorCondition {
            section: 3,
            description: "bus unit dying mid-handshake (watchdog, system reset via CLR)",
            handling: Handling::OutOfScope,
            surfaced_as: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmartMemory;
    use smartbus::{BlockDirection, BusSlave, Tag};

    #[test]
    fn catalogue_covers_three_sections() {
        let cat = catalogue();
        for s in 1..=3u8 {
            assert!(cat.iter().any(|c| c.section == s), "section {s} missing");
        }
        // Every detected error names its surfaced SlaveError.
        for c in &cat {
            match c.handling {
                Handling::RejectedUpFront | Handling::DetectedDuringExecution => {
                    assert!(c.surfaced_as.is_some(), "{}", c.description);
                }
                _ => assert!(c.surfaced_as.is_none(), "{}", c.description),
            }
        }
    }

    /// Each surfaced error class is actually raised by the controller.
    #[test]
    fn surfaced_errors_reachable() {
        let mut sm = SmartMemory::new(256);
        // Address out of range, rejected up front.
        assert!(matches!(
            sm.block_transfer(250, 10, BlockDirection::Read, 0),
            Err(SlaveError::AddressOutOfRange { .. })
        ));
        // Table full.
        for _ in 0..16 {
            sm.block_transfer(0, 2, BlockDirection::Write, 0).unwrap();
        }
        assert!(matches!(
            sm.block_transfer(0, 2, BlockDirection::Write, 0),
            Err(SlaveError::BlockTableFull)
        ));
        // Unknown tag during execution.
        let mut sm = SmartMemory::new(256);
        assert!(matches!(
            sm.stream_out(Tag(7), 2),
            Err(SlaveError::UnknownTag(Tag(7)))
        ));
        // Corrupt list during execution: a "lasso" whose cycle skips the
        // tail, so the walk can never terminate legitimately.
        sm.memory_mut().write_word(0x10, 0x20).unwrap(); // anchor -> tail 0x20
        sm.memory_mut().write_word(0x20, 0x30).unwrap();
        sm.memory_mut().write_word(0x30, 0x40).unwrap();
        sm.memory_mut().write_word(0x40, 0x30).unwrap(); // cycle 0x30 <-> 0x40
        assert!(matches!(
            sm.dequeue(0x10, 0xFE),
            Err(SlaveError::CorruptList { .. })
        ));
    }
}
