//! The smart shared memory controller: [`SmartMemory`].

use crate::blocktable::BlockTable;
use crate::memory::Memory;
use crate::micro::routine_for;
use crate::queue;
use smartbus::{BlockDirection, BusSlave, Command, SlaveError, Tag};

/// Operation counters and micro-cycle accounting for the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Simple reads served.
    pub simple_reads: u64,
    /// Word/byte writes served.
    pub writes: u64,
    /// Block transfer requests registered.
    pub block_requests: u64,
    /// Words streamed (both directions).
    pub words_streamed: u64,
    /// Enqueue operations.
    pub enqueues: u64,
    /// First-control-block operations.
    pub firsts: u64,
    /// Dequeue operations.
    pub dequeues: u64,
    /// Micro-sequencer cycles consumed (per Appendix A budgets).
    pub micro_cycles: u64,
}

/// The smart shared memory: memory array + block table + queue micro-code.
///
/// Implements [`BusSlave`] so a [`smartbus::BusEngine`] can drive it; can
/// also be used directly (the kernel simulations manipulate the same image
/// without paying bus-protocol costs when modeling Architecture IV's
/// partitions separately).
#[derive(Debug, Clone)]
pub struct SmartMemory {
    memory: Memory,
    table: BlockTable,
    stats: ControllerStats,
}

impl SmartMemory {
    /// Creates a controller over a zeroed memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the 16-bit address space (see
    /// [`Memory::new`]).
    pub fn new(size: usize) -> SmartMemory {
        SmartMemory {
            memory: Memory::new(size),
            table: BlockTable::new(),
            stats: ControllerStats::default(),
        }
    }

    /// The underlying memory image.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the memory image (loaders, tests).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The internal block-request table.
    pub fn block_table(&self) -> &BlockTable {
        &self.table
    }

    /// Operation statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.memory.reset_cycles();
    }

    fn charge(&mut self, command: Command, items: u64) {
        self.stats.micro_cycles += routine_for(command).cycles_for(items);
    }
}

impl BusSlave for SmartMemory {
    fn simple_read(&mut self, addr: u16) -> Result<u16, SlaveError> {
        self.charge(Command::SimpleRead, 0);
        self.stats.simple_reads += 1;
        self.memory.read_word(addr)
    }

    fn write_word(&mut self, addr: u16, value: u16) -> Result<(), SlaveError> {
        self.charge(Command::WriteTwoBytes, 0);
        self.stats.writes += 1;
        self.memory.write_word(addr, value)
    }

    fn write_byte(&mut self, addr: u16, value: u8) -> Result<(), SlaveError> {
        self.charge(Command::WriteByte, 0);
        self.stats.writes += 1;
        self.memory.write_byte(addr, value)
    }

    fn block_transfer(
        &mut self,
        addr: u16,
        count: u16,
        direction: BlockDirection,
        priority: u8,
    ) -> Result<Tag, SlaveError> {
        // Validate the whole range up front (§A.5.1: bad block requests are
        // rejected at request time, not mid-stream).
        let end = u32::from(addr) + u32::from(count);
        if end > self.memory.size() as u32 {
            return Err(SlaveError::AddressOutOfRange { addr: end });
        }
        self.charge(Command::BlockTransfer, 0);
        self.stats.block_requests += 1;
        self.table.insert(addr, count, direction, priority)
    }

    fn pending_read(&self) -> Option<Tag> {
        self.table.next_read()
    }

    fn stream_out(&mut self, tag: Tag, max_words: usize) -> Result<(Vec<u16>, bool), SlaveError> {
        let entry = self.table.get(tag).ok_or(SlaveError::UnknownTag(tag))?;
        debug_assert_eq!(entry.direction, BlockDirection::Read);
        let mut words = Vec::with_capacity(max_words);
        for _ in 0..max_words {
            let entry = self.table.get(tag).expect("entry checked above");
            if entry.is_complete() {
                break;
            }
            let addr = entry.cursor();
            let w = self.memory.read_word(addr)?;
            words.push(w);
            self.table.get_mut(tag).expect("entry exists").done += 2;
        }
        self.charge(Command::BlockReadData, words.len() as u64);
        self.stats.words_streamed += words.len() as u64;
        let done = self.table.get(tag).expect("entry exists").is_complete();
        if done {
            self.table.remove(tag);
        }
        Ok((words, done))
    }

    fn stream_in(&mut self, tag: Tag, words: &[u16]) -> Result<bool, SlaveError> {
        {
            let entry = self.table.get(tag).ok_or(SlaveError::UnknownTag(tag))?;
            debug_assert_eq!(entry.direction, BlockDirection::Write);
        }
        for &w in words {
            let addr = self.table.get(tag).expect("entry exists").cursor();
            self.memory.write_word(addr, w)?;
            self.table.get_mut(tag).expect("entry exists").done += 2;
        }
        self.charge(Command::BlockWriteData, words.len() as u64);
        self.stats.words_streamed += words.len() as u64;
        let done = self.table.get(tag).expect("entry exists").is_complete();
        if done {
            self.table.remove(tag);
        }
        Ok(done)
    }

    fn enqueue(&mut self, list: u16, element: u16) -> Result<(), SlaveError> {
        self.charge(Command::EnqueueControlBlock, 0);
        self.stats.enqueues += 1;
        queue::enqueue(&mut self.memory, list, element)
    }

    fn dequeue(&mut self, list: u16, element: u16) -> Result<(), SlaveError> {
        self.charge(Command::DequeueControlBlock, 1);
        self.stats.dequeues += 1;
        queue::dequeue(&mut self.memory, list, element)
    }

    fn first(&mut self, list: u16) -> Result<Option<u16>, SlaveError> {
        self.charge(Command::FirstControlBlock, 0);
        self.stats.firsts += 1;
        queue::first(&mut self.memory, list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_ops_through_slave_interface() {
        let mut sm = SmartMemory::new(4096);
        sm.enqueue(0x20, 0x100).unwrap();
        sm.enqueue(0x20, 0x200).unwrap();
        assert_eq!(sm.first(0x20).unwrap(), Some(0x100));
        sm.dequeue(0x20, 0x200).unwrap();
        assert_eq!(sm.first(0x20).unwrap(), None);
        let s = sm.stats();
        assert_eq!(s.enqueues, 2);
        assert_eq!(s.firsts, 2);
        assert_eq!(s.dequeues, 1);
        assert!(s.micro_cycles > 0);
    }

    #[test]
    fn block_round_trip_through_table() {
        let mut sm = SmartMemory::new(4096);
        let tag = sm
            .block_transfer(0x400, 8, BlockDirection::Write, 3)
            .unwrap();
        assert!(!sm.stream_in(tag, &[0x1111, 0x2222]).unwrap());
        assert!(sm.stream_in(tag, &[0x3333, 0x4444]).unwrap());
        // Table entry retired.
        assert!(sm.block_table().is_empty());

        let tag = sm
            .block_transfer(0x400, 8, BlockDirection::Read, 3)
            .unwrap();
        assert_eq!(sm.pending_read(), Some(tag));
        let (w1, done1) = sm.stream_out(tag, 2).unwrap();
        assert_eq!(w1, vec![0x1111, 0x2222]);
        assert!(!done1);
        let (w2, done2) = sm.stream_out(tag, 2).unwrap();
        assert_eq!(w2, vec![0x3333, 0x4444]);
        assert!(done2);
        assert_eq!(sm.pending_read(), None);
    }

    #[test]
    fn preempted_block_resumes_from_cursor() {
        let mut sm = SmartMemory::new(4096);
        sm.memory_mut().load(0, &[1, 0, 2, 0, 3, 0, 4, 0]).unwrap();
        let tag = sm.block_transfer(0, 8, BlockDirection::Read, 1).unwrap();
        let (first_pair, _) = sm.stream_out(tag, 2).unwrap();
        assert_eq!(first_pair, vec![1, 2]);
        // ... a higher-priority transaction intervenes here ...
        let (second_pair, done) = sm.stream_out(tag, 2).unwrap();
        assert_eq!(second_pair, vec![3, 4]);
        assert!(done);
    }

    #[test]
    fn stale_tag_rejected() {
        let mut sm = SmartMemory::new(4096);
        let err = sm.stream_out(Tag(9), 2).unwrap_err();
        assert_eq!(err, SlaveError::UnknownTag(Tag(9)));
        let err = sm.stream_in(Tag(9), &[1]).unwrap_err();
        assert_eq!(err, SlaveError::UnknownTag(Tag(9)));
    }

    #[test]
    fn block_request_range_checked_up_front() {
        let mut sm = SmartMemory::new(256);
        let err = sm
            .block_transfer(250, 10, BlockDirection::Read, 0)
            .unwrap_err();
        assert!(matches!(err, SlaveError::AddressOutOfRange { .. }));
        assert!(sm.block_table().is_empty());
    }

    #[test]
    fn stats_reset() {
        let mut sm = SmartMemory::new(256);
        sm.write_word(0, 7).unwrap();
        sm.simple_read(0).unwrap();
        assert!(sm.stats().micro_cycles > 0);
        sm.reset_stats();
        assert_eq!(sm.stats(), ControllerStats::default());
        assert_eq!(sm.memory().cycles(), 0);
    }
}
