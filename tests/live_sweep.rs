//! The live-sweep grid engine: byte determinism across runs, fan-out
//! settings and handoff modes, degenerate grids, and overload points.
//!
//! Everything here drives `hsipc::livesweep::run_with` with explicit
//! execution modes, so the assertions hold regardless of the `HSIPC_SWEEP`
//! the test process inherited. All runs are virtual-clock by construction
//! (the sweep accepts nothing else), so none of this measures wall time.

use hsipc::livesweep::{run_with, SweepSpec};
use hsipc::runtime::{Architecture, Handoff, Locality};
use hsipc::sweep::ExecMode;
use std::time::Duration;

/// A grid small enough for CI but wide enough to exercise every render
/// axis: two architectures, two load points, two buffer depths.
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::default_curve();
    spec.archs = vec![Architecture::Uniprocessor, Architecture::SmartBus];
    spec.x_us = vec![0.0, 1_140.0];
    spec.conversations = vec![4];
    spec.buffers = vec![2, 32];
    spec.duration = Duration::from_millis(100);
    spec
}

/// The tentpole determinism contract: the rendered sweep is a pure
/// function of the spec. Repeated sequential runs, a parallel run on
/// several workers, and a broadcast-handoff run must all produce the
/// same bytes — fan-out changes wall-clock, the handoff mode changes
/// only *how* the next actor wakes, and neither may leak into the text.
#[test]
fn rendered_sweep_is_byte_identical_across_runs_fanout_and_handoff() {
    let spec = small_spec();
    let a = run_with(&spec, ExecMode::Sequential, 1);
    let b = run_with(&spec, ExecMode::Sequential, 1);
    assert!(a.all_clean && a.all_progressed, "sweep did not complete");
    assert_eq!(a.rendered, b.rendered, "repeated runs diverged");

    let par = run_with(&spec, ExecMode::Parallel, 8);
    assert_eq!(a.rendered, par.rendered, "worker fan-out leaked into text");

    let mut broadcast = spec.clone();
    broadcast.handoff = Handoff::Broadcast;
    let bc = run_with(&broadcast, ExecMode::Sequential, 1);
    // The handoff mode is workload metadata, so it appears in the header
    // line; every measured row below must match.
    let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
    assert_eq!(
        tail(&a.rendered),
        tail(&bc.rendered),
        "handoff mode changed the measured rows"
    );
    // And the virtual measurements themselves are bit-equal point by point.
    for (t, b) in a.outcomes.iter().zip(bc.outcomes.iter()) {
        assert_eq!(t.report.round_trips, b.report.round_trips);
        assert_eq!(
            t.report.latency.max_us.to_bits(),
            b.report.latency.max_us.to_bits()
        );
        assert_eq!(t.report.handoffs, b.report.handoffs);
    }
}

/// Every grid point carries a model point, and on the validated n = 4
/// local configuration live and model agree within the §6.7
/// cross-validation band.
#[test]
fn every_point_has_a_model_and_live_tracks_it() {
    let spec = small_spec();
    let outcome = run_with(&spec, ExecMode::Sequential, 1);
    assert_eq!(outcome.outcomes.len(), 2 * 2 * 2);
    for o in &outcome.outcomes {
        let model = o.model_per_ms.expect("model point failed to solve");
        assert!(model > 0.0);
        let err = o.rel_err_pct(spec.nodes).expect("no relative error");
        assert!(
            err.abs() < 25.0,
            "{} X={} buffers={}: live {:.4}/ms vs model {:.4}/ms ({err:+.1}%)",
            o.point.architecture.label(),
            o.point.x_us,
            o.point.buffers,
            o.live_per_node_ms(spec.nodes),
            model,
        );
    }
}

/// A degenerate one-point grid is still a sweep: one outcome, a header,
/// one row, one knee line.
#[test]
fn one_point_grid_renders_and_progresses() {
    let mut spec = SweepSpec::default_curve();
    spec.archs = vec![Architecture::MessageCoprocessor];
    spec.x_us = vec![1_140.0];
    spec.conversations = vec![4];
    spec.buffers = vec![32];
    spec.duration = Duration::from_millis(100);
    let outcome = run_with(&spec, ExecMode::Sequential, 1);
    assert_eq!(outcome.outcomes.len(), 1);
    assert!(outcome.all_clean && outcome.all_progressed);
    assert!(outcome.rendered.contains("knee II"), "missing knee line");
    assert_eq!(
        outcome
            .rendered
            .lines()
            .filter(|l| l.starts_with("II "))
            .count(),
        1,
        "expected exactly one measurement row"
    );
}

/// The buffer-shortage cascade the solver cannot model: one kernel buffer
/// under 32 conversations stalls nearly every send, and every overloaded
/// point must still drain cleanly and make progress.
#[test]
fn single_buffer_overload_points_drain_cleanly() {
    let mut spec = SweepSpec::default_curve();
    spec.archs = vec![Architecture::Uniprocessor, Architecture::SmartBus];
    spec.x_us = vec![0.0];
    spec.conversations = vec![32];
    spec.buffers = vec![1];
    spec.duration = Duration::from_millis(100);
    let outcome = run_with(&spec, ExecMode::Sequential, 1);
    assert!(outcome.all_clean, "overloaded sweep did not drain");
    assert!(outcome.all_progressed, "overloaded sweep made no progress");
    for o in &outcome.outcomes {
        assert!(
            o.report.buffer_stalls > 0,
            "{}: one buffer under 32 conversations never stalled",
            o.point.architecture.label(),
        );
    }
}

/// Remote grids exercise the ring: the peak inbound queue depth is
/// observable and the per-node normalization holds live near the model.
#[test]
fn remote_grid_reports_ring_backlog() {
    let mut spec = SweepSpec::default_curve();
    spec.archs = vec![Architecture::SmartBus];
    spec.x_us = vec![0.0];
    spec.conversations = vec![8];
    spec.buffers = vec![16];
    spec.nodes = 2;
    spec.locality = Locality::NonLocal;
    spec.duration = Duration::from_millis(100);
    let outcome = run_with(&spec, ExecMode::Sequential, 1);
    assert!(outcome.all_clean && outcome.all_progressed);
    let o = &outcome.outcomes[0];
    assert!(o.report.ring_frames > 0, "remote run moved no frames");
    assert!(
        o.report.peak_ring_queue > 0,
        "frames moved but the peak queue depth never rose"
    );
}
