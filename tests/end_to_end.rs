//! End-to-end reproduction checks: the paper's §6.10 conclusions must hold
//! in both the analytical models and the discrete-event simulation.

use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::models::{local, nonlocal};

fn des(arch: Architecture, n: usize, x: f64, locality: Locality) -> f64 {
    let spec = WorkloadSpec {
        conversations: n,
        server_compute_us: x,
        locality,
        horizon_us: 3_000_000.0,
        warmup_us: 300_000.0,
        seed: 99,
    };
    Simulation::new(arch, &spec).run().throughput_per_ms
}

/// §6.10 (1): over a band of offered loads, the partition + smart bus beat
/// the uniprocessor, in both model and simulation.
#[test]
fn conclusion_1_partition_and_smart_bus_win() {
    let x = 2_850.0; // offered load ≈ 0.64 under architecture I (local)
    for n in [2u32, 4] {
        let a1 = local::solve(Architecture::Uniprocessor, n, x)
            .unwrap()
            .throughput_per_ms;
        let a2 = local::solve(Architecture::MessageCoprocessor, n, x)
            .unwrap()
            .throughput_per_ms;
        let a3 = local::solve(Architecture::SmartBus, n, x)
            .unwrap()
            .throughput_per_ms;
        assert!(a2 > a1 * 1.15, "n={n}: II {a2} vs I {a1}");
        assert!(a3 > a2, "n={n}: III {a3} vs II {a2}");
    }
    let d1 = des(Architecture::Uniprocessor, 4, x, Locality::Local);
    let d2 = des(Architecture::MessageCoprocessor, 4, x, Locality::Local);
    let d3 = des(Architecture::SmartBus, 4, x, Locality::Local);
    assert!(d2 > d1 * 1.15 && d3 > d2, "DES: {d1} {d2} {d3}");
}

/// §6.10 (2): one conversation pays a small partitioning tax; scaling is
/// sublinear because the MP's bandwidth is finite.
#[test]
fn conclusion_2_small_single_conversation_loss_sublinear_scaling() {
    let a1 = local::solve(Architecture::Uniprocessor, 1, 0.0)
        .unwrap()
        .throughput_per_ms;
    let a2 = local::solve(Architecture::MessageCoprocessor, 1, 0.0)
        .unwrap()
        .throughput_per_ms;
    let loss = 1.0 - a2 / a1;
    assert!(loss > 0.0 && loss < 0.2, "loss {loss}");

    let t1 = local::solve(Architecture::MessageCoprocessor, 1, 0.0)
        .unwrap()
        .throughput_per_ms;
    let t2 = local::solve(Architecture::MessageCoprocessor, 2, 0.0)
        .unwrap()
        .throughput_per_ms;
    let t4 = local::solve(Architecture::MessageCoprocessor, 4, 0.0)
        .unwrap()
        .throughput_per_ms;
    assert!(t2 > t1 && t4 > t2, "throughput must grow: {t1} {t2} {t4}");
    assert!(t4 < 4.0 * t1, "but sublinearly: {t4} vs 4x{t1}");
    assert!(t4 - t2 < t2 - t1 + 1e-9, "with diminishing returns");
}

/// §6.10 (3): smart bus primitives help for non-local conversations too.
#[test]
fn conclusion_3_smart_bus_helps_nonlocal() {
    let a1 = nonlocal::solve(Architecture::Uniprocessor, 2, 0.0)
        .unwrap()
        .throughput_per_ms;
    let a3 = nonlocal::solve(Architecture::SmartBus, 2, 0.0)
        .unwrap()
        .throughput_per_ms;
    assert!(a3 > a1 * 1.2, "III {a3} vs I {a1}");

    let d1 = des(Architecture::Uniprocessor, 2, 0.0, Locality::NonLocal);
    let d3 = des(Architecture::SmartBus, 2, 0.0, Locality::NonLocal);
    assert!(d3 > d1 * 1.2, "DES: III {d3} vs I {d1}");
}

/// §6.10 (4): multiported/partitioned memory does not help significantly —
/// processing, not shared-memory access, is the bottleneck.
#[test]
fn conclusion_4_partitioned_bus_marginal() {
    for (n, x) in [(2u32, 0.0), (3, 1_140.0)] {
        let a3 = local::solve(Architecture::SmartBus, n, x)
            .unwrap()
            .throughput_per_ms;
        let a4 = local::solve(Architecture::PartitionedSmartBus, n, x)
            .unwrap()
            .throughput_per_ms;
        let gain = a4 / a3 - 1.0;
        assert!(gain.abs() < 0.06, "n={n} x={x}: gain {gain}");
    }
}

/// The region of operation: typical Unix service times map to offered loads
/// where the coprocessor is worthwhile (§6.10 quotes 0.43–0.96 local).
#[test]
fn region_of_operation_covers_unix_services() {
    use hsipc::archsim::timings::offered_load;
    // Table 3.6 service times, µs.
    for s in [200.0, 360.0, 3_453.0, 4_350.0, 6_100.0] {
        let load = offered_load(Architecture::Uniprocessor, Locality::Local, s);
        assert!(load > 0.40 && load <= 0.97, "s={s}: load {load}");
    }
}

/// The validation exercise: model within the paper's error bands of the
/// "experimental" simulation across conversations.
#[test]
fn validation_bands_hold() {
    for n in [1u32, 2] {
        let p = hsipc::models::validation::compare(n, 2_850.0, 7).unwrap();
        assert!(
            p.deviation() < 0.12,
            "n={n}: model {} vs measured {}",
            p.model_per_ms,
            p.measured_per_ms
        );
    }
}
