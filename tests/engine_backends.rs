//! The analysis engine's backend policy, end to end: `auto` solves small
//! nets exactly and falls back to the discrete-event estimator past the
//! state budget — opening the n > 4 axis the paper's tools could not reach
//! (§6.9.2) — and the DES estimates cross-check against independent
//! replications of the `archsim` experimental simulator.

use hsipc::archsim;
use hsipc::archsim::{Architecture, Locality, WorkloadSpec};
use hsipc::models::{local, AnalysisEngine, BackendKind, BackendSel, EngineConfig};

/// An `auto` engine whose budget lands between the n=4 and n=5 Arch II
/// local state spaces (6_336 vs 18_982 states).
fn auto_engine() -> AnalysisEngine {
    AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Auto,
        state_budget: 10_000,
        // Lumping off: the n=6 lumped chain (2_982 states) would fit the
        // 10k budget and defeat the fallback this suite exercises.
        lump: hsipc::gtpn::LumpSel::Off,
        ..EngineConfig::default()
    })
}

/// n ≤ 4 solves exactly; n > 4 exceeds the budget and comes back as a DES
/// estimate carrying a 95% confidence interval.
#[test]
fn auto_backend_opens_the_n_gt_4_axis() {
    let engine = auto_engine();
    let x = 5_700.0;

    let small = local::solve_in(&engine, Architecture::MessageCoprocessor, 4, x).unwrap();
    assert_eq!(small.backend, BackendKind::Exact);
    assert!(small.states > 0);
    assert!(small.half_width_per_ms.is_none());

    let big = local::solve_in(&engine, Architecture::MessageCoprocessor, 6, x).unwrap();
    assert_eq!(big.backend, BackendKind::Des, "n=6 must exceed the budget");
    assert_eq!(big.states, 0, "no reachability graph was built");
    assert!(big.throughput_per_ms > 0.0);
    let hw = big
        .half_width_per_ms
        .expect("DES estimates carry a confidence interval");
    assert!(hw > 0.0 && hw < big.throughput_per_ms, "half-width {hw}");

    // More conversations on a compute-bound node: throughput keeps rising
    // (each conversation brings its own server compute), and the exact
    // n=4 point is on the same curve.
    assert!(
        big.throughput_per_ms > small.throughput_per_ms,
        "n=6 {} vs n=4 {}",
        big.throughput_per_ms,
        small.throughput_per_ms
    );
}

/// The DES backend's n=6 estimate agrees with batched replications of the
/// completely independent `archsim` discrete-event simulator.
#[test]
fn des_estimate_cross_checks_with_archsim_replications() {
    let engine = auto_engine();
    let x = 5_700.0;
    let model = local::solve_in(&engine, Architecture::MessageCoprocessor, 6, x).unwrap();
    assert_eq!(model.backend, BackendKind::Des);

    let spec = WorkloadSpec {
        conversations: 6,
        server_compute_us: x,
        locality: Locality::Local,
        horizon_us: 2_000_000.0,
        warmup_us: 200_000.0,
        seed: 7,
    };
    let measured = archsim::replicate(Architecture::MessageCoprocessor, &spec, 1, 4);
    assert_eq!(measured.replications, 4);
    assert!(measured.half_width_per_ms > 0.0);

    // Geometric stages + processor sharing vs FCFS + task binding: the
    // paper's validation band at computation-heavy loads was ~25%.
    let rel =
        (model.throughput_per_ms - measured.throughput_per_ms).abs() / measured.throughput_per_ms;
    assert!(
        rel < 0.25,
        "model {} ± {:?} vs measured {} ± {} ({rel:.3})",
        model.throughput_per_ms,
        model.half_width_per_ms,
        measured.throughput_per_ms,
        measured.half_width_per_ms
    );
}

/// Lumping does not lean on client symmetry — the delay-homogeneity
/// criterion admits every chapter-6/7 net. The two-host Chapter 7 variant
/// (the host pair breaks the single-processor exchangeability) must still
/// agree with the raw chain to solver precision.
#[test]
fn lumped_multi_host_net_agrees_with_raw() {
    let engine = |lump: hsipc::gtpn::LumpSel| {
        AnalysisEngine::new(EngineConfig {
            backend: BackendSel::Exact,
            // Tighter than the default: the 1e-10 agreement bound below
            // needs both chains converged past it.
            tolerance: 1e-13,
            max_sweeps: 400_000,
            lump,
            ..EngineConfig::default()
        })
    };
    let on = local::solve_with_hosts_in(
        &engine(hsipc::gtpn::LumpSel::On),
        Architecture::MessageCoprocessor,
        3,
        5_700.0,
        2,
    )
    .unwrap();
    let off = local::solve_with_hosts_in(
        &engine(hsipc::gtpn::LumpSel::Off),
        Architecture::MessageCoprocessor,
        3,
        5_700.0,
        2,
    )
    .unwrap();
    assert_eq!(on.backend, BackendKind::Exact);
    assert!(
        on.states < off.states,
        "quotient {} vs raw {}",
        on.states,
        off.states
    );
    // Residual tolerance, not solution error: the raw chain's larger
    // spectral radius leaves it a couple of decades above the 1e-13
    // stopping residual, so the agreement bound is 1e-9 relative.
    let gap = (on.throughput_per_ms - off.throughput_per_ms).abs();
    assert!(
        gap < 1e-9 * off.throughput_per_ms.max(1e-3),
        "lumped {} vs raw {}",
        on.throughput_per_ms,
        off.throughput_per_ms
    );
}

/// The lumped exact solution at n=8 — a population the raw chain could
/// only estimate — cross-checks against the DES backend's own 95%
/// confidence interval on the identical net. Two independent paths to the
/// same number: quotient-chain Gauss–Seidel vs replicated simulation.
#[test]
fn lumped_exact_n8_lands_inside_the_des_interval() {
    let x = 5_700.0;
    let exact = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        state_budget: 2_000_000,
        lump: hsipc::gtpn::LumpSel::On,
        ..EngineConfig::default()
    });
    let e = local::solve_in(&exact, Architecture::MessageCoprocessor, 8, x).unwrap();
    assert_eq!(e.backend, BackendKind::Exact);
    assert!(e.states > 0, "lumped runs report the quotient state count");
    assert!(e.half_width_per_ms.is_none());

    let des = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Des,
        ..EngineConfig::default()
    });
    let d = local::solve_in(&des, Architecture::MessageCoprocessor, 8, x).unwrap();
    assert_eq!(d.backend, BackendKind::Des);
    let hw = d
        .half_width_per_ms
        .expect("DES estimates carry a confidence interval");
    let gap = (e.throughput_per_ms - d.throughput_per_ms).abs();
    assert!(
        gap <= hw,
        "exact {} outside DES {} ± {hw}",
        e.throughput_per_ms,
        d.throughput_per_ms
    );
}

/// Replication seeds are derived, not shared: the same spec always yields
/// the same batch estimate, and replication r is stable across batch sizes.
#[test]
fn replications_are_deterministic() {
    let spec = WorkloadSpec::max_load(2, Locality::Local);
    let a = archsim::replicate(Architecture::SmartBus, &spec, 1, 3);
    let b = archsim::replicate(Architecture::SmartBus, &spec, 1, 3);
    assert_eq!(a, b);
    assert!(a.contains(a.throughput_per_ms));
}
