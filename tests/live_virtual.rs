//! Virtual-clock live runtime: determinism, drain/halt edge cases, and
//! deadlock detection through the public API.
//!
//! These tests run under [`ClockMode::Virtual`], so none of them measure
//! wall-clock time — they are immune to machine load and safe to run in
//! parallel. The wall-clock-sensitive real-mode assertions stay alone in
//! `tests/live_runtime.rs` (a separate test binary) for exactly that
//! reason.

use hsipc::runtime::clock::{Bell, ClockMode, ClockSystem};
use hsipc::runtime::{Architecture, Config, Locality};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn virtual_config(arch: Architecture) -> Config {
    let mut config = Config::new(arch);
    config.clock = ClockMode::Virtual;
    config
}

/// Same configuration twice ⇒ the same numbers, to the last bit. The
/// virtual scheduler's total order is a pure function of the config, so
/// every measured quantity must reproduce exactly — no tolerance.
#[test]
fn virtual_runs_are_deterministic() {
    let run = || {
        let mut config = virtual_config(Architecture::MessageCoprocessor);
        config.nodes = 2;
        config.conversations = 16;
        config.locality = Locality::NonLocal;
        config.duration = Duration::from_millis(200);
        hsipc::runtime::run(&config)
    };
    let (a, b) = (run(), run());
    assert!(
        a.clean_shutdown && b.clean_shutdown,
        "drain did not complete"
    );
    assert!(a.round_trips > 0, "no round trips completed");
    assert_eq!(a.round_trips, b.round_trips);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.ring_frames, b.ring_frames);
    assert_eq!(a.buffer_stalls, b.buffer_stalls);
    assert_eq!(a.throughput_per_ms.to_bits(), b.throughput_per_ms.to_bits());
    assert_eq!(a.latency.mean_us.to_bits(), b.latency.mean_us.to_bits());
    assert_eq!(a.latency.p50_us.to_bits(), b.latency.p50_us.to_bits());
    assert_eq!(a.latency.p95_us.to_bits(), b.latency.p95_us.to_bits());
    assert_eq!(a.latency.p99_us.to_bits(), b.latency.p99_us.to_bits());
    assert_eq!(a.latency.max_us.to_bits(), b.latency.max_us.to_bits());
    // Virtual occupancy is exact by construction: no overshoot ledger.
    assert!(a.overshoot.is_empty(), "virtual run recorded overshoot");
}

/// Arch III and IV produce bitwise-identical *virtual* measurements on
/// local traffic — and that identity is genuine, not a stats or seed
/// plumbing bug. The live runtime's cost model charges each activity its
/// no-contention `best_us()` (the virtual clock cannot express physical
/// memory-bank contention, which is the only thing Table 6.20's split
/// shared-access rows change), and archsim's
/// `arch_iv_shared_access_splits_match_arch_iii_totals` proves the III
/// and IV local tables agree activity-by-activity on exactly that
/// column. The architectures therefore *must* coincide here; they
/// separate in real-clock runs and in the GTPN models, where contention
/// exists. The arch II guard below proves the pipeline still
/// distinguishes architectures — the III = IV rows in
/// `BENCH_runtime.json` are a property of virtual time, not a
/// conflation.
#[test]
fn arch_iii_and_iv_virtual_local_runs_are_bitwise_identical() {
    let run = |arch| {
        let mut config = virtual_config(arch);
        config.conversations = 16;
        config.duration = Duration::from_millis(200);
        hsipc::runtime::run(&config)
    };
    let iii = run(Architecture::SmartBus);
    let iv = run(Architecture::PartitionedSmartBus);
    assert!(iii.clean_shutdown && iv.clean_shutdown);
    assert!(iii.round_trips > 0);
    assert_eq!(iii.round_trips, iv.round_trips);
    assert_eq!(iii.elapsed, iv.elapsed);
    assert_eq!(iii.buffer_stalls, iv.buffer_stalls);
    assert_eq!(
        iii.throughput_per_ms.to_bits(),
        iv.throughput_per_ms.to_bits()
    );
    assert_eq!(iii.latency.mean_us.to_bits(), iv.latency.mean_us.to_bits());
    assert_eq!(iii.latency.p50_us.to_bits(), iv.latency.p50_us.to_bits());
    assert_eq!(iii.latency.p99_us.to_bits(), iv.latency.p99_us.to_bits());
    assert_eq!(iii.latency.max_us.to_bits(), iv.latency.max_us.to_bits());
    // Guard: a genuinely different architecture must NOT coincide, or the
    // assertion above would also pass on a conflating stats pipeline.
    let ii = run(Architecture::MessageCoprocessor);
    assert_ne!(
        ii.latency.max_us.to_bits(),
        iii.latency.max_us.to_bits(),
        "arch II coincided with III — stats plumbing no longer distinguishes architectures"
    );
}

/// A nonsensical fleet is a panic, not a hang: the run must refuse up
/// front rather than spawn a load generator with nothing to generate.
#[test]
fn zero_conversations_panics_instead_of_hanging() {
    let mut config = virtual_config(Architecture::Uniprocessor);
    config.conversations = 0;
    let err = catch_unwind(AssertUnwindSafe(|| hsipc::runtime::run(&config)))
        .expect_err("zero conversations must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("at least one conversation"), "panic: {msg}");
}

/// One kernel buffer shared by a whole fleet: every send but one parks on
/// the §3.2.3 shortage path, and the drain must still retire every client
/// — the starved sends unwind in conversation order as buffers free up.
#[test]
fn single_buffer_starvation_still_drains() {
    for arch in [Architecture::Uniprocessor, Architecture::SmartBus] {
        let mut config = virtual_config(arch);
        config.conversations = 32;
        config.buffers = 1;
        config.duration = Duration::from_millis(100);
        let report = hsipc::runtime::run(&config);
        assert!(
            report.clean_shutdown,
            "{arch}: starved drain did not complete"
        );
        assert!(report.round_trips > 0, "{arch}: no round trips completed");
        assert!(
            report.buffer_stalls > 0,
            "{arch}: one buffer under 32 conversations never stalled"
        );
    }
}

/// A zero-length load phase goes straight to drain: clients stop after at
/// most one round trip and shutdown still completes.
#[test]
fn zero_duration_run_drains_immediately() {
    let mut config = virtual_config(Architecture::MessageCoprocessor);
    config.conversations = 8;
    config.duration = Duration::ZERO;
    let report = hsipc::runtime::run(&config);
    assert!(
        report.clean_shutdown,
        "zero-duration drain did not complete"
    );
}

/// A virtual clock that can never advance — every live actor blocked on a
/// bell nobody can ring — must error out, not hang. This exercises the
/// coordinator's poisoning path through the public API, the same detector
/// that turns a buggy drain into a diagnostic instead of a stuck process.
#[test]
fn never_advancing_clock_errors_instead_of_hanging() {
    let sys = ClockSystem::new(ClockMode::Virtual);
    let driver = sys.register();
    let bell = std::sync::Arc::new(Bell::new(&sys));
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let h = sys.register();
            let bell = std::sync::Arc::clone(&bell);
            std::thread::spawn(move || {
                h.attach();
                let epoch = bell.epoch();
                h.wait_past(&bell, epoch, Duration::from_secs(600));
            })
        })
        .collect();
    // The driver retires without ringing: no executing actor remains, so
    // no ring can ever arrive and the frontier is permanently stuck.
    driver.retire();
    for waiter in waiters {
        let err = waiter.join().expect_err("deadlocked waiter must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("virtual clock deadlock"), "panic: {msg}");
    }
}
