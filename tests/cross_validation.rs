//! Cross-validation between the three evaluation engines: the exact GTPN
//! solver, the Monte-Carlo token-game simulator, and the discrete-event
//! architecture simulator. Three independent implementations of the same
//! system should agree — this is the strongest internal-consistency check
//! the reproduction has.

use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::gtpn::sim::{simulate, SimOptions};
use hsipc::models::local;
use hsipc::models::{AnalysisEngine, BackendSel, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact GTPN solution vs Monte-Carlo simulation of the *same net*.
#[test]
fn exact_solver_agrees_with_monte_carlo() {
    let engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        tolerance: 1e-11,
        max_sweeps: 400_000,
        state_budget: 2_000_000,
        ..EngineConfig::default()
    });
    for (arch, n) in [
        (Architecture::Uniprocessor, 2u32),
        (Architecture::MessageCoprocessor, 2),
        (Architecture::SmartBus, 3),
    ] {
        let net = local::build(arch, n, 1_140.0).unwrap();
        let exact = engine
            .analyze(&net)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let mc = simulate(
            &net,
            &SimOptions {
                horizon: 3_000_000,
                warmup: 300_000,
            },
            &mut rng,
        )
        .unwrap()
        .resource_usage("lambda")
        .unwrap();
        let rel = (exact - mc).abs() / exact;
        assert!(
            rel < 0.03,
            "{arch} n={n}: exact {exact} vs MC {mc} ({rel:.3})"
        );
    }
}

/// GTPN model vs discrete-event simulation for local conversations: two
/// completely different abstractions of the same architecture.
#[test]
fn gtpn_model_agrees_with_des_local() {
    for (arch, n, x) in [
        (Architecture::Uniprocessor, 1u32, 0.0),
        (Architecture::Uniprocessor, 3, 2_850.0),
        (Architecture::MessageCoprocessor, 3, 2_850.0),
        (Architecture::SmartBus, 2, 1_140.0),
    ] {
        let model = local::solve(arch, n, x).unwrap().throughput_per_ms;
        let spec = WorkloadSpec {
            conversations: n as usize,
            server_compute_us: x,
            locality: Locality::Local,
            horizon_us: 4_000_000.0,
            warmup_us: 400_000.0,
            seed: 3,
        };
        let des = Simulation::new(arch, &spec).run().throughput_per_ms;
        let rel = (model - des).abs() / des;
        // The model uses geometric stages / processor sharing / contention
        // constants; the DES uses FCFS, task binding and endogenous
        // contention. The paper saw 3–25% depending on load; we require
        // the tight end for these mid-load points.
        assert!(
            rel < 0.15,
            "{arch} n={n} x={x}: model {model} vs DES {des} ({rel:.3})"
        );
    }
}

/// The architecture ordering is invariant across all three engines.
#[test]
fn architecture_ordering_invariant() {
    let x = 1_710.0;
    let mut model_t = Vec::new();
    let mut des_t = Vec::new();
    for arch in [
        Architecture::Uniprocessor,
        Architecture::MessageCoprocessor,
        Architecture::SmartBus,
    ] {
        model_t.push(local::solve(arch, 3, x).unwrap().throughput_per_ms);
        let spec = WorkloadSpec {
            conversations: 3,
            server_compute_us: x,
            locality: Locality::Local,
            horizon_us: 3_000_000.0,
            warmup_us: 300_000.0,
            seed: 17,
        };
        des_t.push(Simulation::new(arch, &spec).run().throughput_per_ms);
    }
    assert!(
        model_t[0] < model_t[1] && model_t[1] < model_t[2],
        "model {model_t:?}"
    );
    assert!(des_t[0] < des_t[1] && des_t[1] < des_t[2], "DES {des_t:?}");
}

/// The Chapter 7 multi-host extension: GTPN model and DES agree on how
/// much a second host buys.
#[test]
fn multi_host_extension_cross_validates() {
    let x = 5_700.0;
    let model_1 = hsipc::models::local::solve_with_hosts(Architecture::MessageCoprocessor, 3, x, 1)
        .unwrap()
        .throughput_per_ms;
    let model_2 = hsipc::models::local::solve_with_hosts(Architecture::MessageCoprocessor, 3, x, 2)
        .unwrap()
        .throughput_per_ms;
    let spec = WorkloadSpec {
        conversations: 3,
        server_compute_us: x,
        locality: Locality::Local,
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed: 23,
    };
    let des_1 = Simulation::with_hosts(Architecture::MessageCoprocessor, &spec, 1)
        .run()
        .throughput_per_ms;
    let des_2 = Simulation::with_hosts(Architecture::MessageCoprocessor, &spec, 2)
        .run()
        .throughput_per_ms;
    let model_gain = model_2 / model_1;
    let des_gain = des_2 / des_1;
    assert!(
        model_gain > 1.2 && des_gain > 1.2,
        "model {model_gain} des {des_gain}"
    );
    assert!(
        (model_gain - des_gain).abs() / des_gain < 0.25,
        "model gain {model_gain} vs DES gain {des_gain}"
    );
}

/// The live runtime under virtual time vs the GTPN local model, along the
/// offered-load curve: three X points spanning light to heavy server
/// compute. The virtual clock makes the live side deterministic and cheap
/// (each point is milliseconds of wall time for a second of virtual load),
/// so real threads driving the real kernel/queue code can be checked
/// against the analytic model at every point — the paper's §6.3 claim that
/// the MP relieves the host (II > I) and the smart bus relieves the MP
/// (III ≳ II) must hold in both engines all along the curve.
#[test]
fn virtual_runtime_tracks_model_ordering_along_the_load_curve() {
    use hsipc::runtime::{ClockMode, Config};
    use std::time::Duration;

    let archs = [
        Architecture::Uniprocessor,
        Architecture::MessageCoprocessor,
        Architecture::SmartBus,
    ];
    let xs = [570.0, 1_140.0, 2_850.0];
    let mut live_curve: Vec<Vec<f64>> = Vec::new();
    for &x in &xs {
        let model: Vec<f64> = archs
            .iter()
            .map(|&arch| {
                local::solve(arch, 4, x)
                    .expect("local model solves at this workload")
                    .throughput_per_ms
            })
            .collect();
        let live: Vec<f64> = archs
            .iter()
            .map(|&arch| {
                let mut config = Config::new(arch);
                config.clock = ClockMode::Virtual;
                config.conversations = 4;
                config.server_compute_us = x;
                config.duration = Duration::from_millis(1_000);
                let report = hsipc::runtime::run(&config);
                assert!(report.clean_shutdown, "{arch} x={x}: drain incomplete");
                assert!(report.round_trips > 0, "{arch} x={x}: no round trips");
                report.throughput_per_ms
            })
            .collect();
        assert!(
            model[1] > model[0] && model[2] >= model[1],
            "x={x}: model ordering broken: {model:?}"
        );
        assert!(
            live[1] > live[0],
            "x={x}: live ordering disagrees with model: II {:.3}/ms <= I {:.3}/ms",
            live[1],
            live[0]
        );
        // III's edge over II is small at n=4; allow the same 5% scheduling
        // slack the wall-clock test uses (the virtual runtime binds tasks
        // and queues FCFS, which the processor-sharing model does not).
        assert!(
            live[2] >= 0.95 * live[1],
            "x={x}: live ordering disagrees with model: III {:.3}/ms << II {:.3}/ms",
            live[2],
            live[1]
        );
        live_curve.push(live);
    }
    // Along the curve: heavier server compute never raises throughput. On
    // II/III the MP's kernel-processing demand, not the host's compute, is
    // the n=4 bottleneck, so X may leave throughput flat; on I the single
    // processor pays X directly, so the decline must be strict.
    for (a, arch) in archs.iter().enumerate() {
        let curve = [live_curve[0][a], live_curve[1][a], live_curve[2][a]];
        assert!(
            curve[0] >= curve[1] && curve[1] >= curve[2],
            "{arch}: live throughput increases with X: {curve:?}"
        );
    }
    let uni = [live_curve[0][0], live_curve[1][0], live_curve[2][0]];
    assert!(
        uni[0] > uni[1] && uni[1] > uni[2],
        "Architecture I: host-bound throughput not strictly falling in X: {uni:?}"
    );
}

/// Place invariants of the architecture nets: processor tokens and
/// conversation tokens are conserved.
#[test]
fn architecture_nets_conserve_tokens() {
    use hsipc::gtpn::invariant;
    for arch in [Architecture::Uniprocessor, Architecture::SmartBus] {
        let net = local::build(arch, 2, 0.0).unwrap();
        let basis = invariant::p_invariants(&net);
        assert!(!basis.is_empty(), "{arch}: no invariants");
        for y in &basis {
            assert!(
                invariant::is_invariant(&net, y),
                "{arch}: basis vector fails"
            );
        }
        // The Host place participates in some conservation law (the
        // processor token never leaks).
        let host = net.place_by_name("Host").unwrap();
        assert!(
            basis.iter().any(|y| y[host.0] != 0),
            "{arch}: Host not covered by any invariant"
        );
    }
}
