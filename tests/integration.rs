//! Cross-crate integration: the smart bus driving the smart memory, the
//! kernel over the token ring, and the experiment registry.

use hsipc::msgkernel::{Kernel, KernelEvent, Message, NodeId, SendMode, ServiceAddr, Syscall};
use hsipc::netsim::{RingNodeId, TokenRing};
use hsipc::smartbus::{BlockDirection, BusEngine, RequestNumber, Response, Transaction};
use hsipc::smartmem::{queue, SmartMemory};

/// The full hardware unit: host, MP and NIC sharing the smart memory over
/// the bus, cooperating on the paper's central data structures — a free
/// list of kernel buffers and the communication list.
#[test]
fn hardware_unit_runs_kernel_data_structures() {
    let mut bus = BusEngine::new(SmartMemory::new(32 * 1024), RequestNumber::new(0));
    let host = bus.add_unit("host", RequestNumber::new(3)).unwrap();
    let mp = bus.add_unit("mp", RequestNumber::new(5)).unwrap();
    let nic = bus.add_unit("nic", RequestNumber::new(6)).unwrap();

    const FREE_LIST: u16 = 0x10;
    const COMM_LIST: u16 = 0x12;

    // Startup: the host links four kernel buffers into the free list.
    for i in 0..4u16 {
        bus.submit(
            host,
            Transaction::Enqueue {
                list: FREE_LIST,
                element: 0x1000 + i * 64,
            },
        )
        .unwrap();
        bus.run_until_idle().unwrap();
    }

    // The MP takes a buffer, the NIC fills it with a packet, the MP links
    // the "TCB" (here: the buffer) onto the communication list.
    bus.submit(mp, Transaction::First { list: FREE_LIST })
        .unwrap();
    let done = bus.run_until_idle().unwrap();
    let buffer = match done[0].response {
        Response::Element(Some(b)) => b,
        ref other => panic!("expected a buffer, got {other:?}"),
    };
    assert_eq!(buffer, 0x1000);

    let payload: Vec<u16> = (0..20).map(|i| 0xA000 + i).collect();
    bus.submit(
        nic,
        Transaction::BlockTransfer {
            addr: buffer + 2, // past the link word
            count: 40,
            direction: BlockDirection::Write,
            data: payload.clone(),
        },
    )
    .unwrap();
    bus.submit(
        mp,
        Transaction::Enqueue {
            list: COMM_LIST,
            element: buffer,
        },
    )
    .unwrap();
    bus.run_until_idle().unwrap();

    // The host reads the message back out of the buffer it finds on the
    // communication list.
    bus.submit(host, Transaction::First { list: COMM_LIST })
        .unwrap();
    let done = bus.run_until_idle().unwrap();
    assert_eq!(done[0].response, Response::Element(Some(buffer)));
    bus.submit(
        host,
        Transaction::BlockTransfer {
            addr: buffer + 2,
            count: 40,
            direction: BlockDirection::Read,
            data: Vec::new(),
        },
    )
    .unwrap();
    let done = bus.run_until_idle().unwrap();
    assert_eq!(done[0].response, Response::Block(payload));

    // Free lists and the memory image stay consistent.
    let mem = bus.slave_mut().memory_mut();
    let free = queue::elements(mem, FREE_LIST).unwrap();
    assert_eq!(free, vec![0x1040, 0x1080, 0x10C0]);
    let comm = queue::elements(mem, COMM_LIST).unwrap();
    assert!(comm.is_empty());
}

/// Two kernels exchanging packets over the token ring: one send and one
/// reply packet per round trip, with wire latency accounted.
#[test]
fn kernels_over_token_ring() {
    let mut ring: TokenRing<hsipc::msgkernel::Packet> = TokenRing::default();
    ring.attach(RingNodeId(0));
    ring.attach(RingNodeId(1));
    let mut a = Kernel::new(NodeId(0), 8);
    let mut b = Kernel::new(NodeId(1), 8);

    let client = a.create_task("client", 1, 64);
    let server = b.create_task("server", 1, 64);
    let svc = b.create_service("svc");
    b.submit(server, Syscall::Offer { service: svc }).unwrap();
    drain(&mut b);
    b.submit(server, Syscall::Receive).unwrap();
    drain(&mut b);

    let mut now = 0u64;
    a.submit(
        client,
        Syscall::Send {
            to: ServiceAddr {
                node: NodeId(1),
                service: svc,
            },
            message: Message::from_bytes(b"over the ring"),
            mode: SendMode::invocation(),
        },
    )
    .unwrap();
    for e in drain(&mut a) {
        if let KernelEvent::PacketOut(p) = e {
            now = ring
                .transmit(now, RingNodeId(0), RingNodeId(1), 40, p)
                .unwrap();
        }
    }
    // 40-byte payload + 16-byte header at 4 Mb/s = 112 µs on the wire.
    assert_eq!(now, 112_000);
    for d in ring.poll(now) {
        b.handle_packet(d.frame.payload).unwrap();
    }
    assert_eq!(
        &b.task(server).unwrap().delivered.unwrap().data[..13],
        b"over the ring"
    );

    b.submit(
        server,
        Syscall::Reply {
            message: Message::from_bytes(b"done"),
        },
    )
    .unwrap();
    for e in drain(&mut b) {
        if let KernelEvent::PacketOut(p) = e {
            now = ring
                .transmit(now, RingNodeId(1), RingNodeId(0), 40, p)
                .unwrap();
        }
    }
    for d in ring.poll(now) {
        a.handle_packet(d.frame.payload).unwrap();
    }
    assert_eq!(
        &a.task(client).unwrap().delivered.unwrap().data[..4],
        b"done"
    );
    assert_eq!(ring.stats().frames, 2, "exactly two packets per round trip");
}

/// Every registered experiment id resolves; the quick ones produce output.
#[test]
fn experiment_registry_consistent() {
    let all = hsipc::experiments::all();
    assert!(all.len() >= 30);
    for e in &all {
        assert!(
            e.id.starts_with("table") || e.id.starts_with("fig"),
            "{}",
            e.id
        );
        assert!(!e.title.is_empty());
    }
    let out = hsipc::experiments::run("table6.1").unwrap();
    assert!(out.contains("Block Read (40 Bytes)"), "{out}");
}

fn drain(k: &mut Kernel) -> Vec<KernelEvent> {
    let mut events = Vec::new();
    while let Some(t) = k.next_communication() {
        events.extend(k.process(t).unwrap());
    }
    events
}
