//! Live-runtime integration: the four architectures execute on real
//! threads under load, and the measured throughput ordering is
//! cross-validated against the GTPN local model's predictions at the §6.3
//! workload (X = 1140 µs).
//!
//! Everything lives in ONE test function on purpose: the live runs measure
//! wall-clock throughput, and the default test harness runs `#[test]`
//! functions concurrently — parallel timing-sensitive runs on one machine
//! would contaminate each other. Virtual-clock runs are deterministic and
//! timing-insensitive, so they live in `tests/live_virtual.rs` instead.

use hsipc::models::local;
use hsipc::runtime::{Architecture, Config, Locality};
use std::time::Duration;

const X_US: f64 = 1_140.0;

fn measured(arch: Architecture, conversations: u32, duration_ms: u64) -> f64 {
    let mut config = Config::new(arch);
    config.conversations = conversations;
    config.duration = Duration::from_millis(duration_ms);
    let report = hsipc::runtime::run(&config);
    assert!(
        report.clean_shutdown,
        "{arch}: drain did not complete within the grace period"
    );
    assert!(report.round_trips > 0, "{arch}: no round trips completed");
    report.throughput_per_ms
}

#[test]
fn live_execution_sustains_load_and_matches_model_ordering() {
    // --- Sustained load: 64 concurrent conversations per architecture,
    // clean shutdown, nonzero throughput.
    for arch in Architecture::ALL {
        let tp = measured(arch, 64, 300);
        assert!(tp > 0.0, "{arch}: zero throughput under 64 conversations");
    }

    // --- Cross-validation: measured ordering of Architectures I/II/III at
    // the §6.3 workload agrees with the GTPN model's prediction. Longer
    // runs, moderate fleet, so queueing reaches steady state.
    let archs = [
        Architecture::Uniprocessor,
        Architecture::MessageCoprocessor,
        Architecture::SmartBus,
    ];
    let model: Vec<f64> = archs
        .iter()
        .map(|&arch| {
            local::solve(arch, 4, X_US)
                .expect("local model solves at the §6.3 workload")
                .throughput_per_ms
        })
        .collect();
    // The paper's claim at this workload (§6.3): the MP relieves the host
    // (II > I) and the smart bus relieves the MP (III >= II).
    assert!(
        model[1] > model[0],
        "model ordering: II {} <= I {}",
        model[1],
        model[0]
    );
    assert!(
        model[2] >= model[1],
        "model ordering: III {} < II {}",
        model[2],
        model[1]
    );

    let live: Vec<f64> = archs.iter().map(|&a| measured(a, 16, 1_200)).collect();
    // Measured ordering must agree. The live numbers ride on OS scheduling,
    // so III >= II is asserted with a small noise allowance; the II > I gap
    // the model predicts (~1.4x) needs none.
    assert!(
        live[1] > live[0],
        "measured ordering disagrees with model: II {:.3}/ms <= I {:.3}/ms",
        live[1],
        live[0]
    );
    assert!(
        live[2] >= 0.9 * live[1],
        "measured ordering disagrees with model: III {:.3}/ms << II {:.3}/ms",
        live[2],
        live[1]
    );

    // --- Remote traffic: two nodes, each node's clients invoking the other
    // node's servers; every round trip crosses the ring twice (§4.6).
    let mut config = Config::new(Architecture::MessageCoprocessor);
    config.nodes = 2;
    config.conversations = 8;
    config.locality = Locality::NonLocal;
    config.duration = Duration::from_millis(400);
    let report = hsipc::runtime::run(&config);
    assert!(report.clean_shutdown, "remote drain did not complete");
    assert!(report.round_trips > 0, "no remote round trips completed");
    assert!(
        report.ring_frames >= 2 * report.round_trips,
        "ring frames {} < 2 x round trips {}",
        report.ring_frames,
        report.round_trips
    );
}
