//! The sweep engine's two contracts, held end to end:
//!
//! 1. **Byte identity** — a figure or table rendered by the parallel worker
//!    pool is byte-for-byte the output of the sequential reference path,
//!    whatever the thread count.
//! 2. **Determinism** — DES replications seed from their grid coordinates,
//!    so the same point gives the same metrics on every run, no matter
//!    which worker executes it.

use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::models::{self, AnalysisEngine, EngineConfig};
use hsipc::sweep::{self, ExecMode};

/// fig6.17 — four GTPN solves per architecture column, the slowest swept
/// figure in the registry — must render identically in both modes.
#[test]
fn fig_6_17_parallel_matches_sequential() {
    let seq = hsipc::experiments::run_with("fig6.17", ExecMode::Sequential, 1).unwrap();
    let par = hsipc::experiments::run_with("fig6.17", ExecMode::Parallel, 4).unwrap();
    assert_eq!(par, seq, "fig6.17 diverged under the worker pool");
    // Sanity: this is the real figure, not an empty render.
    assert!(seq.contains("Maximum Communication Load (Local)"));
    assert!(seq.lines().count() > 10);
}

/// table6.24 — the offered-load rows sweep — must render identically in
/// both modes.
#[test]
fn table_6_24_parallel_matches_sequential() {
    let seq = hsipc::experiments::run_with("table6.24", ExecMode::Sequential, 1).unwrap();
    for threads in [2, 4] {
        let par = hsipc::experiments::run_with("table6.24", ExecMode::Parallel, threads).unwrap();
        assert_eq!(par, seq, "table6.24 diverged at {threads} threads");
    }
    assert!(seq.contains("Offered Loads"));
    // Title + header + rule + 13 rows.
    assert_eq!(seq.lines().count(), 16);
}

/// The multi-host Chapter 7 grid also survives the pool.
#[test]
fn fig_7_1_parallel_matches_sequential() {
    let seq = hsipc::experiments::run_with("fig7.1", ExecMode::Sequential, 1).unwrap();
    let par = hsipc::experiments::run_with("fig7.1", ExecMode::Parallel, 3).unwrap();
    assert_eq!(par, seq);
}

/// Warm starting is a trajectory optimization, not a result change: a
/// multi-axis grid (compute × conversations, the fig6.18 shape) rendered
/// through a warm-started engine on the worker pool prints exactly what a
/// cold sequential engine prints. Each engine gets a private cache, so
/// the only hand-off under test is the warm-start one.
#[test]
fn warm_start_grid_matches_cold_start() {
    let engine = |warm: bool| {
        AnalysisEngine::new(EngineConfig {
            warm_start: warm,
            ..EngineConfig::default()
        })
        .with_cache(256)
    };
    let grid = sweep::cartesian(&[0.0f64, 500.0, 1500.0, 3000.0], &[1u32, 4]);
    let render = |e: &AnalysisEngine, &(x_us, n): &(f64, u32)| {
        let s = models::local::solve_in(e, Architecture::MessageCoprocessor, n, x_us)
            .expect("local model solves");
        (format!("{:.4}", s.throughput_per_ms), s.states)
    };
    let warm = grid.eval_in_with(&engine(true), ExecMode::Parallel, 4, render);
    let cold = grid.eval_in_with(&engine(false), ExecMode::Sequential, 1, render);
    assert_eq!(warm, cold, "warm-started grid diverged from cold");
    // Not vacuous: at least one point took the iterative large-chain path
    // where a seed can change the trajectory.
    assert!(
        warm.iter().any(|(_, states)| *states > 128),
        "grid never left the direct-solve regime: {warm:?}"
    );
}

/// Exact lumping is a solver optimization, not a result change: the same
/// compute × conversations grid rendered at figure precision through a
/// lumping engine prints exactly what the raw-chain engine prints. Each
/// engine carries a private cache (the orbit-aware key would otherwise
/// keep the two policies apart anyway), and the lumped leg runs on the
/// worker pool so the frontier-parallel quotient build is under test too.
#[test]
fn lumped_grid_matches_raw_grid() {
    let engine = |lump: hsipc::gtpn::LumpSel| {
        AnalysisEngine::new(EngineConfig {
            lump,
            ..EngineConfig::default()
        })
        .with_cache(256)
    };
    let grid = sweep::cartesian(&[0.0f64, 1_500.0, 5_700.0], &[1u32, 2, 4]);
    let render = |e: &AnalysisEngine, &(x_us, n): &(f64, u32)| {
        let s = models::local::solve_in(e, Architecture::MessageCoprocessor, n, x_us)
            .expect("local model solves");
        format!("{:.4}", s.throughput_per_ms)
    };
    let lumped = grid.eval_in_with(
        &engine(hsipc::gtpn::LumpSel::On),
        ExecMode::Parallel,
        4,
        render,
    );
    let raw = grid.eval_in_with(
        &engine(hsipc::gtpn::LumpSel::Off),
        ExecMode::Sequential,
        1,
        render,
    );
    assert_eq!(lumped, raw, "lumped grid diverged from the raw chain");
}

/// Two DES runs from the same seed produce identical metrics — the
/// foundation the fig6.15 validation grid's reproducibility rests on.
#[test]
fn same_seed_des_runs_are_identical() {
    let spec = WorkloadSpec {
        conversations: 2,
        server_compute_us: 1_140.0,
        locality: Locality::NonLocal,
        horizon_us: 400_000.0,
        warmup_us: 40_000.0,
        seed: sweep::point_seed("sweep-identity", &[2, 0]),
    };
    let a = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
    let b = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
    assert_eq!(a, b, "same seed must give bitwise-identical metrics");
    assert!(a.completed > 0, "simulation actually ran");

    // A different grid coordinate gives a different seed and (for this
    // workload) different sampled compute times.
    let other = WorkloadSpec {
        seed: sweep::point_seed("sweep-identity", &[2, 1]),
        ..spec
    };
    let c = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
    let d = Simulation::new(Architecture::MessageCoprocessor, &other).run();
    assert_eq!(a, c);
    assert_ne!(d, a, "distinct coordinates should not replay the same run");
}

/// Evaluating a grid point on a pool is observationally the same as calling
/// the model directly — the engine adds no hidden state.
#[test]
fn pooled_model_solve_equals_direct_call() {
    let direct = hsipc::models::local::solve(Architecture::SmartBus, 2, 0.0)
        .unwrap()
        .throughput_per_ms;
    let grid = sweep::Grid::new(vec![2u32; 4]);
    let pooled = grid.eval_with(ExecMode::Parallel, 4, |&n| {
        hsipc::models::local::solve(Architecture::SmartBus, n, 0.0)
            .unwrap()
            .throughput_per_ms
    });
    for (i, t) in pooled.iter().enumerate() {
        assert_eq!(
            t.to_bits(),
            direct.to_bits(),
            "slot {i} differs from direct solve"
        );
    }
}
