//! Cross-crate scenarios following the paper's own narrative, exercising
//! integration paths the per-crate suites do not: the expression parser
//! feeding the solver, waveforms against engine timing, non-blocking sends
//! across nodes, and Architecture IV under the discrete-event simulator.

use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::gtpn::{parse, Net, Transition};
use hsipc::msgkernel::{
    Kernel, KernelEvent, Message, NodeId, SendMode, ServiceAddr, Syscall, TaskState,
};
use hsipc::smartbus::waveform::TimingDiagram;
use hsipc::smartbus::Command;

/// A net whose frequencies are written in the paper's textual notation,
/// parsed, and solved — the full front-to-back path of the gtpn crate.
#[test]
fn parsed_notation_drives_the_solver() {
    let mut net = Net::new("parsed");
    let p = net.add_place("Client", 1);
    let intr = net.add_place("NetIntr", 0);
    // Geometric stage written exactly as a thesis table would print it.
    let exit_t = net
        .add_transition(
            Transition::new("T0")
                .delay(1)
                .frequency(parse::parse_expr(&net, "(NetIntr = 0) -> 1/50, 0").unwrap())
                .resource("lambda")
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
    let loop_freq = parse::parse_expr(&net, "(NetIntr = 0) -> 1 - 1/50, 0").unwrap();
    net.add_transition(
        Transition::new("T1")
            .delay(1)
            .frequency(loop_freq)
            .input(p, 1)
            .output(p, 1),
    )
    .unwrap();
    let _ = (intr, exit_t);
    let engine = hsipc::gtpn::AnalysisEngine::new(hsipc::gtpn::EngineConfig {
        backend: hsipc::gtpn::BackendSel::Exact,
        tolerance: 1e-12,
        max_sweeps: 100_000,
        state_budget: 1_000,
        ..hsipc::gtpn::EngineConfig::default()
    });
    let usage = engine
        .analyze(&net)
        .unwrap()
        .resource_usage("lambda")
        .unwrap();
    assert!((usage - 1.0 / 50.0).abs() < 1e-9, "usage {usage}");
}

/// Waveform edge counts agree with the protocol engine's timing for every
/// non-streaming command: the figures and the simulator share one truth.
#[test]
fn waveforms_match_engine_edge_costs() {
    for c in Command::ALL {
        if c.is_streaming() {
            continue;
        }
        let art = TimingDiagram::for_command(c, 0).render();
        let label = match c.handshake_edges() {
            4 => "four-edge",
            8 => "eight-edge",
            other => panic!("unexpected handshake {other} for {c}"),
        };
        assert!(art.contains(label), "{c}: {art}");
    }
}

/// A non-blocking remote invocation across two nodes: the client keeps
/// computing while the request crosses the ring, and a later Wait picks up
/// the reply.
#[test]
fn non_blocking_send_across_nodes() {
    let mut a = Kernel::new(NodeId(0), 8);
    let mut b = Kernel::new(NodeId(1), 8);
    let client = a.create_task("client", 1, 64);
    let server = b.create_task("server", 1, 64);
    let svc = b.create_service("svc");
    b.submit(server, Syscall::Offer { service: svc }).unwrap();
    drain(&mut b);
    b.submit(server, Syscall::Receive).unwrap();
    drain(&mut b);

    a.submit(
        client,
        Syscall::Send {
            to: ServiceAddr {
                node: NodeId(1),
                service: svc,
            },
            message: Message::from_bytes(b"async"),
            mode: SendMode::RemoteInvocation { blocking: false },
        },
    )
    .unwrap();
    let packet = first_packet(drain(&mut a));
    // The client is still computing, not stopped.
    assert_eq!(a.task(client).unwrap().state, TaskState::Computing);

    b.handle_packet(packet).unwrap();
    b.submit(
        server,
        Syscall::Reply {
            message: Message::from_bytes(b"done"),
        },
    )
    .unwrap();
    let reply = first_packet(drain(&mut b));
    a.handle_packet(reply).unwrap();

    // Wait returns immediately with the response.
    a.submit(client, Syscall::Wait).unwrap();
    let events = drain(&mut a);
    assert!(events
        .iter()
        .any(|e| matches!(e, KernelEvent::WaitComplete { client: c } if *c == client)));
    assert_eq!(
        &a.task(client).unwrap().delivered.unwrap().data[..4],
        b"done"
    );
}

/// Architecture IV under the DES for non-local conversations — the one
/// (architecture, locality) cell no other test drives end to end.
#[test]
fn arch_iv_nonlocal_des_matches_arch_iii_shape() {
    let spec = WorkloadSpec {
        conversations: 2,
        server_compute_us: 1_140.0,
        locality: Locality::NonLocal,
        horizon_us: 3_000_000.0,
        warmup_us: 300_000.0,
        seed: 77,
    };
    let m3 = Simulation::new(Architecture::SmartBus, &spec).run();
    let m4 = Simulation::new(Architecture::PartitionedSmartBus, &spec).run();
    assert!(m4.throughput_per_ms > 0.0);
    let gain = m4.throughput_per_ms / m3.throughput_per_ms - 1.0;
    assert!(gain.abs() < 0.08, "IV vs III non-local gain {gain}");
    assert!(m4.mean_round_trip_us > 0.0);
}

/// Offered-load inversion and the DES agree: running the DES at the server
/// time computed for a target offered load yields utilization consistent
/// with that load for Architecture I (whose host does all the work).
#[test]
fn offered_load_matches_host_utilization() {
    let load = 0.6;
    let s = hsipc::models::offered::server_time_for_load_arch1(Locality::Local, load);
    let spec = WorkloadSpec {
        conversations: 1,
        server_compute_us: s,
        locality: Locality::Local,
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed: 5,
    };
    let m = Simulation::new(Architecture::Uniprocessor, &spec).run();
    // One conversation on one host: the host is busy all the time (there is
    // always either communication or computation to do), and the fraction
    // of round-trip time that is communication is the offered load.
    assert!(m.host_utilization > 0.97, "host {}", m.host_utilization);
    let c =
        hsipc::archsim::timings::round_trip_us(Architecture::Uniprocessor, Locality::Local, false);
    let measured_load = c / m.mean_round_trip_us;
    assert!(
        (measured_load - load).abs() < 0.05,
        "measured load {measured_load} vs target {load}"
    );
}

fn drain(k: &mut Kernel) -> Vec<KernelEvent> {
    let mut events = Vec::new();
    while let Some(t) = k.next_communication() {
        events.extend(k.process(t).unwrap());
    }
    events
}

fn first_packet(events: Vec<KernelEvent>) -> hsipc::msgkernel::Packet {
    events
        .into_iter()
        .find_map(|e| match e {
            KernelEvent::PacketOut(p) => Some(p),
            _ => None,
        })
        .expect("a packet was emitted")
}
