//! Thread-count invariance of the solver stack, end to end:
//!
//! * a non-local figure renders byte-identically whether the sweep pool
//!   and the solver's inner parallelism get 1 core or 8;
//! * the §6.6.3 fixed point solves to bit-identical numbers under a
//!   1-core and an 8-core engine budget (the concurrent client/server
//!   sub-solves and the frontier-parallel reachability build must not
//!   perturb a single float);
//! * the opt-in red-black Gauss–Seidel (`HSIPC_PAR_SOLVE=1`) agrees with
//!   the serial solver to well under the documented 1e-10.

use std::sync::Arc;

use hsipc::gtpn::ParallelBudget;
use hsipc::models::{self, AnalysisEngine, Architecture, BackendSel, DesOptions, EngineConfig};
use hsipc::sweep::ExecMode;

/// A fresh Exact-backend engine with a private cache and an explicit
/// core budget — nothing shared between the configurations under test.
fn engine(cores: usize, par_solve: bool) -> AnalysisEngine {
    AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        tolerance: models::TOLERANCE,
        max_sweeps: models::MAX_SWEEPS,
        state_budget: models::STATE_BUDGET,
        des: DesOptions::default(),
        par_solve,
        // Warm starting must not break budget invariance: the §6.6.3
        // stores travel with the fixed point's closures, not with the
        // threads the budget happens to grant.
        warm_start: true,
        // Explicitly Auto: the budget-invariance assertions below must
        // also hold when the lumped chain is built frontier-parallel.
        lump: hsipc::gtpn::LumpSel::Auto,
    })
    .with_cache(256)
    .with_budget(Arc::new(ParallelBudget::new(cores)))
}

/// fig6.19 — realistic workload, non-local: every column goes through the
/// §6.6.3 fixed point, so this exercises the concurrent sub-solves, the
/// budgeted reachability build, and the worker pool at once.
#[test]
fn nonlocal_figure_is_identical_at_1_and_8_threads() {
    let seq = hsipc::experiments::run_with("fig6.19", ExecMode::Sequential, 1).unwrap();
    let par = hsipc::experiments::run_with("fig6.19", ExecMode::Parallel, 8).unwrap();
    assert_eq!(par, seq, "fig6.19 diverged between 1 and 8 threads");
    assert!(seq.contains("Realistic Workload (Non-local)"));
    assert!(seq.lines().count() > 10);
}

/// The fixed point itself: bit-identical floats under serial and 8-wide
/// engine budgets.
#[test]
fn nonlocal_fixed_point_is_budget_invariant() {
    let narrow = engine(1, false);
    let wide = engine(8, false);
    for n in [1, 3] {
        let a =
            models::nonlocal::solve_in(&narrow, Architecture::MessageCoprocessor, n, 0.0).unwrap();
        let b =
            models::nonlocal::solve_in(&wide, Architecture::MessageCoprocessor, n, 0.0).unwrap();
        assert_eq!(
            a.throughput_per_ms.to_bits(),
            b.throughput_per_ms.to_bits(),
            "n={n}: throughput diverged across budgets"
        );
        assert_eq!(
            a.s_d_us.to_bits(),
            b.s_d_us.to_bits(),
            "n={n}: S_d diverged"
        );
        assert_eq!(
            a.c_d_us.to_bits(),
            b.c_d_us.to_bits(),
            "n={n}: C_d diverged"
        );
        assert_eq!(
            a.iterations, b.iterations,
            "n={n}: iteration count diverged"
        );
    }
}

/// The red-black parallel Gauss–Seidel is a different iteration, so it is
/// opt-in and tolerance-equal rather than bit-equal: the non-local fixed
/// point lands within 1e-10 (relative) of the serial solver's answer.
#[test]
fn par_solve_fixed_point_agrees_with_serial() {
    let serial = engine(8, false);
    let red_black = engine(8, true);
    for n in [1, 2] {
        let a =
            models::nonlocal::solve_in(&serial, Architecture::MessageCoprocessor, n, 0.0).unwrap();
        let b = models::nonlocal::solve_in(&red_black, Architecture::MessageCoprocessor, n, 0.0)
            .unwrap();
        let rel = (a.throughput_per_ms - b.throughput_per_ms).abs()
            / a.throughput_per_ms.max(f64::MIN_POSITIVE);
        assert!(
            rel < 1e-10,
            "n={n}: red-black throughput {} vs serial {} (rel {rel:e})",
            b.throughput_per_ms,
            a.throughput_per_ms
        );
    }
}
