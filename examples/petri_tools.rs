//! The GTPN engine as a standalone tool: build the paper's Architecture II
//! local model, inspect its structure (invariants, bounds, DOT export),
//! solve it exactly, and cross-check with a Monte-Carlo run carrying a
//! confidence interval.
//!
//! Run with: `cargo run --release --example petri_tools`

use hsipc::gtpn::sim::{confidence_interval, SimOptions};
use hsipc::gtpn::{dot, invariant};
use hsipc::models::{local, AnalysisEngine, Architecture, BackendSel, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = local::build(Architecture::MessageCoprocessor, 2, 1_140.0)?;
    println!(
        "net: {} ({} places, {} transitions)",
        net.name(),
        net.place_count(),
        net.transition_count()
    );

    // Structure: conservation laws.
    let basis = invariant::p_invariants(&net);
    println!("\nP-invariants ({}):", basis.len());
    for y in &basis {
        let terms: Vec<String> = y
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(|(i, &w)| {
                let name = net.place_name(hsipc::gtpn::PlaceId(i));
                if w == 1 {
                    name.to_string()
                } else {
                    format!("{w}·{name}")
                }
            })
            .collect();
        let conserved = invariant::weighted_tokens(&net.initial_marking(), y);
        println!("  {} = {conserved}", terms.join(" + "));
    }
    let t_basis = invariant::t_invariants(&net);
    println!("T-invariants: {} (the conversation cycles)", t_basis.len());

    // Exact analysis through the engine; its retained reachability graph
    // answers the structural queries (bounds, liveness).
    // Lumping off: this example inspects the raw reachability graph
    // (bounds, dead transitions), which lumped runs do not retain.
    let engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        lump: hsipc::gtpn::LumpSel::Off,
        ..EngineConfig::default()
    });
    let analysis = engine.analyze(&net)?;
    let graph = analysis
        .graph()
        .expect("exact backend retains the reachability graph");
    println!(
        "\nreachability: {} tangible states, {} edges",
        graph.state_count(),
        graph.edge_count()
    );
    let host = net.place_by_name("Host").expect("model has a Host place");
    println!(
        "Host place bound: {} (the processor token is almost always in use)",
        graph.place_bound(host)
    );
    let dead = graph.dead_transitions();
    println!(
        "dead transitions: {}",
        if dead.is_empty() {
            "none".into()
        } else {
            format!("{dead:?}")
        }
    );

    // Exact steady state (solved by the same engine call).
    let exact = analysis.resource_usage("lambda")?;
    println!(
        "\nexact throughput: {:.6} conversations/µs ({:.4}/ms)",
        exact,
        exact * 1_000.0
    );
    println!(
        "solver: {} sweeps, residual {:.2e}",
        analysis.iterations().expect("exact backend iterates"),
        analysis.residual().expect("exact backend converges")
    );

    // Monte-Carlo cross-check with a confidence interval.
    let mut rng = StdRng::seed_from_u64(2026);
    let ci = confidence_interval(
        &net,
        &SimOptions {
            horizon: 400_000,
            warmup: 40_000,
        },
        "lambda",
        6,
        &mut rng,
    )?;
    println!(
        "monte-carlo: {:.6} ± {:.6} ({})",
        ci.estimate,
        ci.half_width,
        if ci.contains(exact) {
            "covers the exact value"
        } else {
            "MISSES the exact value!"
        }
    );
    assert!(ci.contains(exact));

    // DOT export for visual inspection.
    let dot_text = dot::to_dot(&net);
    println!(
        "\nDOT export: {} lines; render with `dot -Tsvg`",
        dot_text.lines().count()
    );
    println!(
        "first lines:\n{}",
        dot_text.lines().take(5).collect::<Vec<_>>().join("\n")
    );
    Ok(())
}
