//! A miniature of the paper's Chapter 6 study: compares the four node
//! architectures with both the analytical GTPN models and the discrete-event
//! simulator, across communication-bound and computation-bound workloads.
//!
//! Run with: `cargo run --release --example architecture_study`

use hsipc::archsim::timings::{offered_load, round_trip_us};
use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::models::local;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Round-trip communication time C (best case, host+MP, local):");
    for arch in Architecture::ALL {
        println!(
            "  {:>16}: {:>5.0} us  (offered load at S=5.7ms: {:.3})",
            arch.to_string(),
            round_trip_us(arch, Locality::Local, false),
            offered_load(arch, Locality::Local, 5_700.0),
        );
    }

    println!("\nThroughput (conversations/ms), 3 local conversations:");
    println!(
        "  {:<18} {:>12} {:>12} {:>14}",
        "", "model X=0", "DES X=0", "DES X=2.85ms"
    );
    for arch in Architecture::ALL {
        let model = local::solve(arch, 3, 0.0)?;
        let des0 = Simulation::new(arch, &spec(0.0)).run();
        let des_x = Simulation::new(arch, &spec(2_850.0)).run();
        println!(
            "  {:<18} {:>12.4} {:>12.4} {:>14.4}",
            arch.to_string(),
            model.throughput_per_ms,
            des0.throughput_per_ms,
            des_x.throughput_per_ms,
        );
    }

    println!("\nReadings (the paper's conclusions):");
    let a1 = local::solve(Architecture::Uniprocessor, 3, 2_850.0)?;
    let a2 = local::solve(Architecture::MessageCoprocessor, 3, 2_850.0)?;
    let a3 = local::solve(Architecture::SmartBus, 3, 2_850.0)?;
    let a4 = local::solve(Architecture::PartitionedSmartBus, 3, 2_850.0)?;
    println!(
        "  software partition (II vs I) at realistic load: {:.2}x (bound: 2x)",
        a2.throughput_per_ms / a1.throughput_per_ms
    );
    println!(
        "  smart bus on top (III vs II):                   {:.2}x",
        a3.throughput_per_ms / a2.throughput_per_ms
    );
    println!(
        "  partitioned bus (IV vs III):                    {:.2}x (memory is not the bottleneck)",
        a4.throughput_per_ms / a3.throughput_per_ms
    );
    Ok(())
}

fn spec(x_us: f64) -> WorkloadSpec {
    WorkloadSpec {
        conversations: 3,
        server_compute_us: x_us,
        locality: Locality::Local,
        horizon_us: 3_000_000.0,
        warmup_us: 300_000.0,
        seed: 2,
    }
}
