//! Quickstart: a local rendezvous through the message kernel, then a quick
//! look at what the message coprocessor buys.
//!
//! Run with: `cargo run --release --example quickstart`

use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use hsipc::msgkernel::{Kernel, Message, NodeId, SendMode, ServiceAddr, Syscall};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The message kernel: client/server rendezvous -----------------
    let mut kernel = Kernel::new(NodeId(0), 16);
    let client = kernel.create_task("client", 1, 256);
    let server = kernel.create_task("server", 1, 256);
    let svc = kernel.create_service("greeter");
    let addr = ServiceAddr {
        node: kernel.node(),
        service: svc,
    };

    // The server advertises the service and posts a receive.
    kernel.submit(server, Syscall::Offer { service: svc })?;
    pump(&mut kernel);
    kernel.submit(server, Syscall::Receive)?;
    pump(&mut kernel);

    // The client performs a blocking remote-invocation send.
    kernel.submit(
        client,
        Syscall::Send {
            to: addr,
            message: Message::from_bytes(b"ping"),
            mode: SendMode::invocation(),
        },
    )?;
    pump(&mut kernel);
    let request = kernel.task(server)?.delivered.expect("rendezvous formed");
    println!("server received: {:?}", &request.data[..4]);

    kernel.submit(
        server,
        Syscall::Reply {
            message: Message::from_bytes(b"pong"),
        },
    )?;
    pump(&mut kernel);
    let reply = kernel.task(client)?.delivered.expect("reply delivered");
    println!("client received: {:?}", &reply.data[..4]);
    println!("kernel stats: {:?}\n", kernel.stats());

    // --- 2. Does a message coprocessor help? -----------------------------
    let spec = WorkloadSpec {
        conversations: 3,
        server_compute_us: 2_850.0,
        locality: Locality::Local,
        horizon_us: 2_000_000.0,
        warmup_us: 200_000.0,
        seed: 1,
    };
    println!("3 local conversations, 2.85 ms server compute each:");
    for arch in Architecture::ALL {
        let m = Simulation::new(arch, &spec).run();
        println!(
            "  {:>16}: {:.3} conversations/ms (round trip {:.0} us, host {:.0}% busy)",
            arch.to_string(),
            m.throughput_per_ms,
            m.mean_round_trip_us,
            100.0 * m.host_utilization,
        );
    }
    Ok(())
}

/// Drains the communication list — plays the message coprocessor's role.
fn pump(kernel: &mut Kernel) {
    while let Some(task) = kernel.next_communication() {
        kernel.process(task).expect("valid request");
    }
}
