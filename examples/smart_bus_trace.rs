//! Drives the smart bus cycle by cycle and prints the tenure trace:
//! a network interface streams a long block into the smart memory while the
//! message coprocessor's atomic queue operations preempt it between word
//! pairs — the §5.2 guarantee that the bus is never locked for arbitrary
//! time, with the memory's internal table restarting the preempted block.
//!
//! Run with: `cargo run --release --example smart_bus_trace`

use hsipc::smartbus::{BlockDirection, BusEngine, RequestNumber, Response, Transaction};
use hsipc::smartmem::SmartMemory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bus = BusEngine::new(SmartMemory::new(16 * 1024), RequestNumber::new(0));
    // Priorities per the paper's organization: network devices above the
    // processors would risk starving queue work; here the MP outranks the
    // NIC so kernel queue manipulation slips between streaming word pairs.
    let nic = bus.add_unit("network-interface", RequestNumber::new(2))?;
    let mp = bus.add_unit("message-coprocessor", RequestNumber::new(5))?;
    bus.enable_trace();

    // The NIC starts writing a 64-byte packet into a kernel buffer.
    let packet: Vec<u16> = (0x100..0x120).collect();
    bus.submit(
        nic,
        Transaction::BlockTransfer {
            addr: 0x1000,
            count: 64,
            direction: BlockDirection::Write,
            data: packet,
        },
    )?;
    // Let the stream get going: request handshake + three word pairs.
    for _ in 0..4 {
        bus.step()?;
    }
    // Mid-stream, the MP needs atomic queue work: it wins the next
    // arbitrations and the block yields between word pairs.
    bus.submit(
        mp,
        Transaction::Enqueue {
            list: 0x20,
            element: 0x200,
        },
    )?;
    bus.step()?;
    bus.submit(mp, Transaction::First { list: 0x20 })?;
    bus.step()?;
    let completed = bus.run_until_idle()?;

    println!("bus tenure trace:");
    for e in bus.trace() {
        let master = match e.master {
            Some(u) if u == nic => "NIC",
            Some(_) => "MP ",
            None => "MEM",
        };
        println!(
            "  t={:>6} ns  {master}  {:<22} {:>2} edges  {}",
            e.at_ns,
            e.command.to_string(),
            e.edges,
            e.detail
        );
    }

    println!("\ncompletions:");
    for c in bus.completed() {
        println!(
            "  {:?} -> {:?} (submitted {} ns, done {} ns)",
            c.transaction.command().to_string(),
            c.response,
            c.submit_ns,
            c.complete_ns
        );
    }

    // The dequeued element is the one the MP enqueued, and the packet
    // arrived intact despite the preemption.
    let first = bus
        .completed()
        .iter()
        .find(|c| matches!(c.response, Response::Element(_)))
        .expect("first-control-block completed");
    assert_eq!(first.response, Response::Element(Some(0x200)));
    assert_eq!(completed.len(), 1, "the block is the last to finish");
    let stored = bus.slave().memory().dump(0x1000, 4)?;
    assert_eq!(stored, [0x00, 0x01, 0x01, 0x01]);
    println!("\npacket bytes at 0x1000: {stored:?} — block survived preemption");
    Ok(())
}
