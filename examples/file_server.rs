//! The paper's Figure 4.2 scenario: an *editor* asks a *file server* for a
//! page of a file by enclosing a memory reference in a fixed-size message;
//! the server moves the page directly into the editor's address space with
//! `memory move` and replies — no kernel buffering of the bulk data.
//!
//! Run with: `cargo run --release --example file_server`

use hsipc::msgkernel::MoveDirection;
use hsipc::msgkernel::{
    AccessRights, Kernel, MemoryRef, Message, NodeId, SendMode, ServiceAddr, Syscall,
};

const PAGE: usize = 512;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(NodeId(0), 16);
    let editor = kernel.create_task("editor", 1, 8 * 1024);
    let file_server = kernel.create_task("file-server", 1, 64 * 1024);
    let files = kernel.create_service("file-service");
    let addr = ServiceAddr {
        node: kernel.node(),
        service: files,
    };

    // "Mount the disk": load sixteen pages into the server's space, each
    // stamped with its page number and filled with recognizable content.
    for page in 0..16u8 {
        let mut content = vec![page; PAGE];
        content[1..8].copy_from_slice(b"PAGE-OF");
        kernel.load_address_space(file_server, usize::from(page) * PAGE, &content)?;
    }

    kernel.submit(file_server, Syscall::Offer { service: files })?;
    pump(&mut kernel);
    kernel.submit(file_server, Syscall::Receive)?;
    pump(&mut kernel);

    // The editor requests page 3 into its buffer at offset 1024, granting
    // the server write access to exactly that window.
    let mut request = [0u8; 40];
    request[..11].copy_from_slice(b"read page \x03");
    kernel.submit(
        editor,
        Syscall::Send {
            to: addr,
            message: Message {
                data: request,
                memory_ref: None,
            }
            .with_memory_ref(MemoryRef {
                offset: 1024,
                length: PAGE as u32,
                rights: AccessRights::read_write(),
            }),
            mode: SendMode::invocation(),
        },
    )?;
    pump(&mut kernel);

    // The file server parses the request and moves the page.
    let delivered = kernel
        .task(file_server)?
        .delivered
        .expect("request arrived");
    let page_no = delivered.data[10] as usize;
    println!("file server: request for page {page_no}");
    kernel.submit(
        file_server,
        Syscall::MemoryMove {
            direction: MoveDirection::ToClient,
            local_offset: (page_no * PAGE) as u32,
            length: PAGE as u32,
        },
    )?;
    pump(&mut kernel);
    kernel.submit(
        file_server,
        Syscall::Reply {
            message: Message::from_bytes(b"ok"),
        },
    )?;
    pump(&mut kernel);

    // The editor now holds the page.
    let editor_task = kernel.task(editor)?;
    let got = &editor_task.address_space[1024..1024 + 8];
    println!("editor buffer starts with: {got:?}");
    assert_eq!(got[0] as usize, page_no, "page stamp arrived");
    assert_eq!(&got[1..8], b"PAGE-OF");
    println!(
        "reply: {:?}",
        &editor_task.delivered.expect("replied").data[..2]
    );

    // After the reply the server's access rights are gone (§4.2.1): another
    // move is refused by the kernel's validity checking.
    kernel.submit(
        file_server,
        Syscall::MemoryMove {
            direction: MoveDirection::ToClient,
            local_offset: 0,
            length: 8,
        },
    )?;
    let t = kernel.next_communication().expect("request queued");
    match kernel.process(t) {
        Err(e) => println!("second move correctly refused: {e}"),
        Ok(_) => unreachable!("rights must lapse at reply"),
    }
    Ok(())
}

/// Drains the communication list — plays the message coprocessor's role.
fn pump(kernel: &mut Kernel) {
    while let Some(task) = kernel.next_communication() {
        kernel.process(task).expect("valid request");
    }
}
