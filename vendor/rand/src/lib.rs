//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! not the upstream ChaCha-based `StdRng` stream, but deterministic,
//! well-distributed, and more than adequate for simulation workloads.
//! Nothing here is cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random range to sample from; mirrors `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {:?}", self);
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {:?}", self);
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, rand-0.8 style.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        let y = rng.gen_range(1.5..=1.5);
        assert_eq!(y, 1.5);
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // RangeFrom reaches high values.
        let big = rng.gen_range(60_000u16..);
        assert!(big >= 60_000);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03, "{hits}");
    }
}
