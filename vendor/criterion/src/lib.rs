//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! mean-of-N wall-clock measurement printed to stdout — no warmup modeling,
//! outlier analysis, or HTML reports. Good enough for relative comparisons
//! and for keeping `cargo bench` compiling and runnable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost; all variants behave
/// identically here (setup always runs once per iteration, untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: u64, f: &mut F) {
    let mut bencher = Bencher {
        iterations: samples,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "{name:<48} {per_iter:>12.3?}/iter ({} iters)",
        bencher.iterations
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples with warmup; this stand-in keeps
        // bench runs short since there is no statistics engine to feed.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&name.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.sample_size(5).bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(total, 35);
    }
}
