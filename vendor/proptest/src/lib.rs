//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! subset of proptest its test suites use: the [`proptest!`] macro, range /
//! tuple / [`strategy::Just`] / [`strategy::Union`] strategies, `prop_map`,
//! [`any`], and the [`collection`] generators. Semantics deliberately match
//! upstream where the tests can observe them:
//!
//! * each `#[test]` body runs `ProptestConfig::cases` times with freshly
//!   generated inputs;
//! * generation is deterministic per test (seeded from the test's module
//!   path), so failures reproduce run-to-run;
//! * `PROPTEST_CASES` in the environment overrides the per-suite case count.
//!
//! What it does **not** do is shrink: a failing case panics with the
//! generated inputs un-minimized (assertion messages in this workspace print
//! the inputs they depend on). Recorded `*.proptest-regressions` files are
//! not replayed — regressions worth keeping are promoted to explicit unit
//! tests instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-suite configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// Deterministic generation source (xoshiro256++ seeded from a label).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `label` — typically the
        /// fully-qualified test name, so every test owns a stable stream.
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty span");
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy for storage in heterogeneous collections.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range {:?}", self);
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range {:?}", self);
                    let span = (hi as u64) - (lo as u64) + 1;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range {:?}", self);
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range {:?}", self);
            lo + (hi - lo) * rng.next_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary: Sized + Debug {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy form of [`Arbitrary`]; see [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies: `[min, max]`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng).max(usize::from(self.size.min > 0));
            let mut out = BTreeSet::new();
            // Duplicates don't grow the set; bound the attempts so a
            // too-narrow element domain degrades to a smaller set instead of
            // looping forever.
            for _ in 0..(16 * target + 64) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Sets of `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Upstream re-exports the crate as `prop` inside the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// many times against freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.resolved_cases();
                let mut prop_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Property-test assertion; panics (no shrinking) with the usual message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let hi = (60_000u16..).generate(&mut rng);
            assert!(hi >= 60_000);
        }
    }

    #[test]
    fn collections_and_unions_generate() {
        let mut rng = TestRng::deterministic("collections");
        let strat = crate::collection::vec((0u8..4).prop_map(|x| x * 2), 1..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 6);
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
        }
        let set = crate::collection::btree_set(0u8..8, 1..8).generate(&mut rng);
        assert!(!set.is_empty() && set.len() < 8);
        let one = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..100 {
            let v = one.generate(&mut rng);
            assert!([1, 2, 5, 6].contains(&v));
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires patterns, strategies and bodies together.
        #[test]
        fn macro_roundtrip(mut xs in crate::collection::vec(0u16..100, 1..10), b in any::<bool>()) {
            xs.push(5);
            prop_assert!(xs.iter().all(|&x| x <= 100));
            prop_assert!(u8::from(b) <= 1);
        }
    }
}
